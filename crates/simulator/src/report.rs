//! Simulation results.

use rstorm_metrics::{Summary, ThroughputReport};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// A broken engine invariant, surfaced as data instead of a
/// `debug_assert!` so release-build fuzz campaigns can check every run
/// (see [`crate::SimConfig::check_invariants`] and
/// [`crate::sim::Simulation::run_checked`]). An empty violation list is
/// the oracle the chaos fuzzer hunts against.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// The replay-plane drain invariant
    /// `emitted == completed + quarantined + in_flight` failed: a
    /// logical root was double-settled or leaked.
    DrainImbalance {
        /// Roots admitted through the spout-pending window.
        emitted: u64,
        /// Roots settled as acked.
        completed: u64,
        /// Roots settled as poison.
        quarantined: u64,
        /// Roots still unsettled at the horizon.
        in_flight: u64,
    },
    /// The live-root ledger failed: the engine's `live_logical` count
    /// disagrees with the sum of unfailed slab residents and queued
    /// replays.
    LedgerMismatch {
        /// The engine's running count of unsettled logical roots.
        live_logical: u64,
        /// Live unfailed attempts in the root slab.
        slab_live: u64,
        /// Entries waiting in spout replay queues.
        replay_queued: u64,
    },
    /// A reported metric is NaN or infinite.
    NonFiniteMetric {
        /// Which metric (a stable dotted path into the report).
        metric: String,
        /// The offending value.
        value: f64,
    },
    /// A reported metric that must be non-negative is below zero.
    NegativeMetric {
        /// Which metric (a stable dotted path into the report).
        metric: String,
        /// The offending value.
        value: f64,
    },
    /// A monotone counter is implausibly close to `u64::MAX` — the
    /// signature of wrapping arithmetic, far beyond what any simulated
    /// horizon can legitimately produce.
    CounterOverflow {
        /// Which counter.
        counter: String,
        /// The suspect value.
        value: u64,
    },
}

impl InvariantViolation {
    /// Stable machine-readable kind label (the shrinker preserves the
    /// kind of the oracle a plan trips).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::DrainImbalance { .. } => "drain_imbalance",
            Self::LedgerMismatch { .. } => "ledger_mismatch",
            Self::NonFiniteMetric { .. } => "non_finite_metric",
            Self::NegativeMetric { .. } => "negative_metric",
            Self::CounterOverflow { .. } => "counter_overflow",
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DrainImbalance {
                emitted,
                completed,
                quarantined,
                in_flight,
            } => write!(
                f,
                "drain invariant: emitted {emitted} != completed {completed} \
                 + quarantined {quarantined} + in_flight {in_flight}"
            ),
            Self::LedgerMismatch {
                live_logical,
                slab_live,
                replay_queued,
            } => write!(
                f,
                "root ledger: live_logical {live_logical} != slab_live {slab_live} \
                 + replay_queued {replay_queued}"
            ),
            Self::NonFiniteMetric { metric, value } => {
                write!(f, "metric {metric} is not finite ({value})")
            }
            Self::NegativeMetric { metric, value } => {
                write!(f, "metric {metric} is negative ({value})")
            }
            Self::CounterOverflow { counter, value } => {
                write!(
                    f,
                    "counter {counter} is implausibly large ({value}), likely wrapped"
                )
            }
        }
    }
}

/// Counters this close to `u64::MAX` can only come from wrapping
/// subtraction — no simulated horizon emits 2^63 of anything.
const OVERFLOW_CANARY: u64 = u64::MAX / 2;

/// Aggregate event counts of a run (useful for conservation checks and
/// diagnosing overload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimTotals {
    /// Root batches emitted by spouts.
    pub spout_batches: u64,
    /// Batch deliveries to task input queues (including shed ones).
    pub batches_delivered: u64,
    /// Deliveries shed because their root had already timed out.
    pub batches_dropped: u64,
    /// Roots fully processed within the timeout.
    pub roots_completed: u64,
    /// Roots failed by the tuple timeout.
    pub roots_timed_out: u64,
    /// Tuples processed by bolts (stale ones included).
    pub tuples_processed: u64,
    /// Tuples of live roots processed at sinks — the throughput numerator.
    pub tuples_completed: u64,
    /// Tuples destroyed by injected node crashes (queued, in service, or
    /// in flight toward a crashed worker). Zero for fault-free runs. In
    /// replay mode only quarantined roots charge this counter — a
    /// replayed-then-acked root retransmitted its crash-destroyed data,
    /// so it is not lost.
    pub tuples_lost: u64,
    /// Logical roots admitted through the spout-pending window. Zero
    /// unless replay is enabled (`SimConfig::max_replays > 0`); subject
    /// to the drain invariant
    /// `roots_emitted == roots_completed + roots_quarantined + roots_in_flight`.
    pub roots_emitted: u64,
    /// Spout re-emissions of failed roots (replay mode only). Counts
    /// attempts, so one root replayed twice contributes 2.
    pub roots_replayed: u64,
    /// Logical roots that failed beyond their retry budget and were
    /// quarantined as poison tuples (replay mode only).
    pub roots_quarantined: u64,
    /// Tuples carried by quarantined roots (replay mode only).
    pub tuples_quarantined: u64,
    /// Logical roots still un-settled — live or awaiting replay — when
    /// the horizon cut the run off (replay mode only).
    pub roots_in_flight: u64,
}

/// Engine-internal counters exposed for observability and performance
/// regression tests. These describe *how* the engine ran, not *what* the
/// simulated cluster did, so they are excluded from report equality (the
/// fast and reference engines must agree on the physics, not on their
/// internal bookkeeping — the reference engine has no pools).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimDebugStats {
    /// Events popped and handled by the main loop.
    pub events: u64,
    /// Root-slab inserts served from the free-list pool (recycled
    /// allocations — nonzero once the first tuple tree retires).
    pub root_pool_hits: u64,
    /// Root-slab inserts that grew the slab.
    pub root_pool_misses: u64,
    /// High-water mark of simultaneously in-flight tuple trees.
    pub max_live_roots: u64,
    /// Precomputed routes in the routing table.
    pub route_entries: u64,
}

/// Recovery observability derived from a crash-then-recover scenario by
/// the chaos harness (`crate::chaos`). Attached to [`SimReport::recovery`]
/// only for such runs; plain simulations leave it `None`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryObservations {
    /// When the injected crash happened, in simulation milliseconds.
    pub crash_at_ms: f64,
    /// Crash until the control loop declared the node dead (includes the
    /// configured heartbeat-miss window). Negative if never detected
    /// within the run.
    pub time_to_detect_ms: f64,
    /// Crash until the displaced topology was fully re-placed (no
    /// unplaced tasks). Negative if full recovery never happened within
    /// the run.
    pub time_to_recover_ms: f64,
    /// Tuples destroyed by the outage (mirrors
    /// [`SimTotals::tuples_lost`]).
    pub tuples_lost: u64,
    /// Depth of the throughput dip: `1 - worst_outage_window /
    /// steady_pre_crash_mean`, clamped to `[0, 1]`. Zero means the
    /// outage was invisible in sink throughput.
    pub throughput_dip_depth: f64,
    /// Scheduler invocations the recovery loop spent re-placing work.
    pub reschedule_attempts: u64,
    /// Spout re-emissions of failed roots during the scenario (mirrors
    /// [`SimTotals::roots_replayed`]; zero when replay is disabled).
    pub roots_replayed: u64,
    /// Tuples quarantined beyond the retry budget (mirrors
    /// [`SimTotals::tuples_quarantined`]; zero for a survivable fault).
    pub tuples_quarantined: u64,
    /// Flap events the control plane absorbed: readmissions withheld by
    /// the trust hysteresis plus reschedules deferred by the churn
    /// limiter (`RecoveryManager::suppressed_flaps`).
    pub suppressed_flaps: u64,
}

/// Telemetry of one fabric link under the fair-share network plane
/// (`SimConfig::network_model == NetworkModel::Fair`).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUtilization {
    /// Stable link name: `"{node}.egress"`, `"{node}.ingress"`,
    /// `"{rack}.uplink"`, `"{rack}.downlink"` or `"core"`.
    pub link: String,
    /// Base capacity in Mbps (before any degradation window).
    pub capacity_mbps: f64,
    /// Mean utilization over the run, in `[0, 1]`.
    pub mean_utilization: f64,
    /// Complete report windows in which the link ran at ≥ 95 % of its
    /// effective capacity (see `crate::network::SATURATION_THRESHOLD`).
    pub saturated_windows: u64,
    /// Megabytes the link carried.
    pub mb_carried: f64,
}

/// The `network` section of a report: per-link utilization and
/// saturation, present only when the fair-share plane served the run.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkObservations {
    /// Every fabric link in id order (node NICs, rack trunks, core).
    pub links: Vec<LinkUtilization>,
}

impl NetworkObservations {
    /// `(rack, mean_utilization)` of every rack uplink trunk — the
    /// congestion signal the adaptive plane feeds to `DriftDetector`.
    pub fn trunk_utilization(&self) -> Vec<(String, f64)> {
        self.links
            .iter()
            .filter_map(|l| {
                let rack = l.link.strip_suffix(".uplink")?;
                Some((rack.to_owned(), l.mean_utilization))
            })
            .collect()
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Simulated duration in milliseconds.
    pub duration_ms: f64,
    /// Reporting window width in milliseconds.
    pub window_ms: f64,
    /// Per-topology sink throughput (tuples per window, averaged over
    /// sinks — the paper's §6.2 metric).
    pub throughput: BTreeMap<String, ThroughputReport>,
    /// Mean CPU utilization over the machines that did any work —
    /// the Figure 10 metric.
    pub mean_used_cpu_utilization: Summary,
    /// Number of machines that did any work.
    pub used_nodes: usize,
    /// Number of distinct machines each topology's tasks were placed on.
    pub used_nodes_by_topology: BTreeMap<String, usize>,
    /// Per-node CPU utilization (used nodes only, sorted by node name).
    pub node_utilization: Vec<(String, f64)>,
    /// Megabytes carried by the shared inter-rack uplink — the traffic a
    /// colocating scheduler avoids.
    pub inter_rack_mb: f64,
    /// End-to-end latency of completed tuple trees, in milliseconds —
    /// emission at the spout to the last descendant's processing.
    pub latency_ms: Summary,
    /// Aggregate event counts.
    pub totals: SimTotals,
    /// Recovery metrics, present only for chaos-harness runs.
    pub recovery: Option<RecoveryObservations>,
    /// Per-link network telemetry, present only when the fair-share
    /// network plane served the run (`None` under the legacy model, which
    /// keeps the report layout byte-identical to the pre-plane engine).
    pub network: Option<NetworkObservations>,
    /// Engine-internal counters (excluded from `==`; see
    /// [`SimDebugStats`]).
    pub debug: SimDebugStats,
}

/// Equality over the simulated outcome only: every physical field takes
/// part, [`SimReport::debug`] deliberately does not. This is what the
/// fast/reference parity tests compare — two engines that agree on every
/// observable of the run are interchangeable even though their internal
/// counters differ.
impl PartialEq for SimReport {
    fn eq(&self, other: &Self) -> bool {
        self.duration_ms == other.duration_ms
            && self.window_ms == other.window_ms
            && self.throughput == other.throughput
            && self.mean_used_cpu_utilization == other.mean_used_cpu_utilization
            && self.used_nodes == other.used_nodes
            && self.used_nodes_by_topology == other.used_nodes_by_topology
            && self.node_utilization == other.node_utilization
            && self.inter_rack_mb == other.inter_rack_mb
            && self.latency_ms == other.latency_ms
            && self.totals == other.totals
            && self.recovery == other.recovery
            && self.network == other.network
    }
}

impl SimReport {
    /// Mean steady-state throughput of a topology in tuples per window,
    /// skipping `skip` warm-up windows.
    pub fn steady_throughput(&self, topology: &str, skip: usize) -> f64 {
        self.throughput
            .get(topology)
            .map_or(0.0, |t| t.steady_state(skip).mean)
    }

    /// Fraction of settled logical roots that acked:
    /// `roots_completed / (roots_emitted - roots_in_flight)`. Roots the
    /// horizon cut off mid-flight are excluded — they are neither
    /// delivered nor lost. `1.0` when nothing settled (vacuously
    /// lossless) and, by the drain invariant, exactly `1.0` iff no root
    /// quarantined. Meaningful for replay-enabled runs; a replay-disabled
    /// run reports `1.0` because the legacy counters stay zero.
    pub fn zero_loss_ratio(&self) -> f64 {
        let settled = self.totals.roots_emitted - self.totals.roots_in_flight;
        if settled == 0 {
            return 1.0;
        }
        self.totals.roots_completed as f64 / settled as f64
    }

    /// Tuples carried by roots that failed beyond their retry budget
    /// (see [`SimTotals::tuples_quarantined`]).
    pub fn tuples_quarantined(&self) -> u64 {
        self.totals.tuples_quarantined
    }

    /// Counter-sanity sweep over the report: every float metric must be
    /// finite, the non-negative ones non-negative, and every monotone
    /// counter far from the wrap-around canary. A pure function of the
    /// report, so harnesses can check any run after the fact; the engine
    /// folds these into [`crate::sim::Simulation::run_checked`] when
    /// [`crate::SimConfig::check_invariants`] is on.
    pub fn sanity_violations(&self) -> Vec<InvariantViolation> {
        fn float(out: &mut Vec<InvariantViolation>, metric: &str, value: f64, non_negative: bool) {
            if !value.is_finite() {
                out.push(InvariantViolation::NonFiniteMetric {
                    metric: metric.to_owned(),
                    value,
                });
            } else if non_negative && value < 0.0 {
                out.push(InvariantViolation::NegativeMetric {
                    metric: metric.to_owned(),
                    value,
                });
            }
        }
        let mut out = Vec::new();
        float(&mut out, "duration_ms", self.duration_ms, true);
        float(&mut out, "window_ms", self.window_ms, true);
        float(&mut out, "inter_rack_mb", self.inter_rack_mb, true);
        for (topo, t) in &self.throughput {
            for (i, &w) in t.windows.iter().enumerate() {
                float(&mut out, &format!("throughput.{topo}[{i}]"), w, true);
            }
        }
        for (node, u) in &self.node_utilization {
            float(&mut out, &format!("node_utilization.{node}"), *u, true);
        }
        float(&mut out, "latency_ms.mean", self.latency_ms.mean, true);
        float(&mut out, "latency_ms.stddev", self.latency_ms.stddev, true);
        if self.totals.roots_in_flight <= self.totals.roots_emitted {
            float(&mut out, "zero_loss_ratio", self.zero_loss_ratio(), true);
        } else {
            // More in flight than ever emitted: the drain accounting
            // wrapped; computing the ratio would underflow.
            out.push(InvariantViolation::DrainImbalance {
                emitted: self.totals.roots_emitted,
                completed: self.totals.roots_completed,
                quarantined: self.totals.roots_quarantined,
                in_flight: self.totals.roots_in_flight,
            });
        }
        if let Some(r) = &self.recovery {
            float(&mut out, "recovery.crash_at_ms", r.crash_at_ms, true);
            // Detect/recover latencies use -1.0 sentinels, so only
            // finiteness is required of them.
            float(
                &mut out,
                "recovery.time_to_detect_ms",
                r.time_to_detect_ms,
                false,
            );
            float(
                &mut out,
                "recovery.time_to_recover_ms",
                r.time_to_recover_ms,
                false,
            );
            float(
                &mut out,
                "recovery.throughput_dip_depth",
                r.throughput_dip_depth,
                true,
            );
        }
        if let Some(n) = &self.network {
            for l in &n.links {
                let path = format!("network.{}", l.link);
                float(
                    &mut out,
                    &format!("{path}.capacity_mbps"),
                    l.capacity_mbps,
                    true,
                );
                float(
                    &mut out,
                    &format!("{path}.mean_utilization"),
                    l.mean_utilization,
                    true,
                );
                float(&mut out, &format!("{path}.mb_carried"), l.mb_carried, true);
                if l.saturated_windows > OVERFLOW_CANARY {
                    out.push(InvariantViolation::CounterOverflow {
                        counter: format!("{path}.saturated_windows"),
                        value: l.saturated_windows,
                    });
                }
            }
        }
        let t = &self.totals;
        for (counter, value) in [
            ("spout_batches", t.spout_batches),
            ("batches_delivered", t.batches_delivered),
            ("batches_dropped", t.batches_dropped),
            ("roots_completed", t.roots_completed),
            ("roots_timed_out", t.roots_timed_out),
            ("tuples_processed", t.tuples_processed),
            ("tuples_completed", t.tuples_completed),
            ("tuples_lost", t.tuples_lost),
            ("roots_emitted", t.roots_emitted),
            ("roots_replayed", t.roots_replayed),
            ("roots_quarantined", t.roots_quarantined),
            ("tuples_quarantined", t.tuples_quarantined),
            ("roots_in_flight", t.roots_in_flight),
        ] {
            if value > OVERFLOW_CANARY {
                out.push(InvariantViolation::CounterOverflow {
                    counter: counter.to_owned(),
                    value,
                });
            }
        }
        out
    }

    /// Serializes the physical outcome (everything `==` compares; debug
    /// counters excluded) as deterministic JSON with fixed key order and
    /// shortest-roundtrip float formatting. Two runs produce the same
    /// string iff they produced the same report — the golden-report
    /// regression test pins this string for a fixed seed and workload.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"duration_ms\": {:?},", self.duration_ms);
        let _ = writeln!(out, "  \"window_ms\": {:?},", self.window_ms);
        out.push_str("  \"throughput\": {\n");
        for (i, (topo, t)) in self.throughput.iter().enumerate() {
            let _ = write!(
                out,
                "    {}: {{\"window_ms\": {:?}, \"windows\": [",
                json_str(topo),
                t.window_ms
            );
            for (j, w) in t.windows.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{w:?}");
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.throughput.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  },\n");
        let _ = writeln!(
            out,
            "  \"mean_used_cpu_utilization\": {},",
            json_summary(&self.mean_used_cpu_utilization)
        );
        let _ = writeln!(out, "  \"used_nodes\": {},", self.used_nodes);
        out.push_str("  \"used_nodes_by_topology\": {");
        for (i, (topo, n)) in self.used_nodes_by_topology.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_str(topo), n);
        }
        out.push_str("},\n");
        out.push_str("  \"node_utilization\": [");
        for (i, (node, u)) in self.node_utilization.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{}, {:?}]", json_str(node), u);
        }
        out.push_str("],\n");
        let _ = writeln!(out, "  \"inter_rack_mb\": {:?},", self.inter_rack_mb);
        let _ = writeln!(out, "  \"latency_ms\": {},", json_summary(&self.latency_ms));
        let t = &self.totals;
        let _ = write!(
            out,
            "  \"totals\": {{\"spout_batches\": {}, \"batches_delivered\": {}, \
             \"batches_dropped\": {}, \"roots_completed\": {}, \"roots_timed_out\": {}, \
             \"tuples_processed\": {}, \"tuples_completed\": {}, \"tuples_lost\": {}",
            t.spout_batches,
            t.batches_delivered,
            t.batches_dropped,
            t.roots_completed,
            t.roots_timed_out,
            t.tuples_processed,
            t.tuples_completed,
            t.tuples_lost
        );
        // The replay-plane counters appear only for replay-enabled runs
        // (`roots_emitted` counts every admitted root there, so it is
        // nonzero whenever a spout emitted at all). Replay-disabled runs
        // keep the legacy byte layout, which the golden-report test pins.
        if t.roots_emitted > 0 {
            let _ = write!(
                out,
                ", \"roots_emitted\": {}, \"roots_replayed\": {}, \"roots_quarantined\": {}, \
                 \"tuples_quarantined\": {}, \"roots_in_flight\": {}",
                t.roots_emitted,
                t.roots_replayed,
                t.roots_quarantined,
                t.tuples_quarantined,
                t.roots_in_flight
            );
        }
        out.push('}');
        if let Some(r) = &self.recovery {
            let _ = write!(
                out,
                ",\n  \"recovery\": {{\"crash_at_ms\": {:?}, \"time_to_detect_ms\": {:?}, \
                 \"time_to_recover_ms\": {:?}, \"tuples_lost\": {}, \
                 \"throughput_dip_depth\": {:?}, \"reschedule_attempts\": {}, \
                 \"roots_replayed\": {}, \"tuples_quarantined\": {}, \
                 \"suppressed_flaps\": {}}}",
                r.crash_at_ms,
                r.time_to_detect_ms,
                r.time_to_recover_ms,
                r.tuples_lost,
                r.throughput_dip_depth,
                r.reschedule_attempts,
                r.roots_replayed,
                r.tuples_quarantined,
                r.suppressed_flaps
            );
        }
        // The network section exists only for fair-plane runs; legacy
        // runs keep the pre-plane byte layout the golden test pins.
        if let Some(n) = &self.network {
            out.push_str(",\n  \"network\": {\"links\": [");
            for (i, l) in n.links.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"link\": {}, \"capacity_mbps\": {:?}, \"mean_utilization\": {:?}, \
                     \"saturated_windows\": {}, \"mb_carried\": {:?}}}",
                    json_str(&l.link),
                    l.capacity_mbps,
                    l.mean_utilization,
                    l.saturated_windows,
                    l.mb_carried
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n}\n");
        out
    }
}

fn json_summary(s: &Summary) -> String {
    format!(
        "{{\"count\": {}, \"mean\": {:?}, \"stddev\": {:?}, \"min\": {:?}, \"max\": {:?}}}",
        s.count, s.mean, s.stddev, s.min, s.max
    )
}

fn json_str(s: &str) -> String {
    // Workload/node names in this workspace are plain identifiers; escape
    // the two structural characters anyway so the output is always valid.
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> SimReport {
        SimReport {
            duration_ms: 1000.0,
            window_ms: 100.0,
            throughput: BTreeMap::new(),
            mean_used_cpu_utilization: Summary::of([]),
            used_nodes: 0,
            used_nodes_by_topology: BTreeMap::new(),
            node_utilization: Vec::new(),
            inter_rack_mb: 0.0,
            latency_ms: Summary::of([]),
            totals: SimTotals::default(),
            recovery: None,
            network: None,
            debug: SimDebugStats::default(),
        }
    }

    fn uplink(rack: &str, utilization: f64) -> LinkUtilization {
        LinkUtilization {
            link: format!("{rack}.uplink"),
            capacity_mbps: 600.0,
            mean_utilization: utilization,
            saturated_windows: 0,
            mb_carried: 1.0,
        }
    }

    #[test]
    fn steady_throughput_defaults_to_zero() {
        assert_eq!(empty_report().steady_throughput("ghost", 0), 0.0);
    }

    #[test]
    fn totals_default_to_zero() {
        let t = SimTotals::default();
        assert_eq!(t.spout_batches, 0);
        assert_eq!(t.roots_completed, 0);
    }

    #[test]
    fn equality_ignores_debug_stats() {
        let a = empty_report();
        let mut b = empty_report();
        b.debug.events = 1_000_000;
        b.debug.root_pool_hits = 42;
        assert_eq!(a, b);
        let mut c = empty_report();
        c.totals.spout_batches = 1;
        assert_ne!(a, c);
        let mut d = empty_report();
        d.inter_rack_mb = 0.5;
        assert_ne!(a, d);
    }

    #[test]
    fn json_is_deterministic_and_debug_free() {
        let mut r = empty_report();
        r.throughput.insert(
            "t".to_owned(),
            ThroughputReport {
                window_ms: 100.0,
                windows: vec![1.5, 2.0],
            },
        );
        r.used_nodes_by_topology.insert("t".to_owned(), 3);
        r.node_utilization.push(("n0".to_owned(), 0.25));
        let j1 = r.to_json();
        r.debug.events = 99; // must not affect the serialization
        let j2 = r.to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"windows\": [1.5, 2.0]"));
        assert!(j1.contains("\"used_nodes_by_topology\": {\"t\": 3}"));
        assert!(!j1.contains("debug"));
    }

    #[test]
    fn recovery_observations_participate_in_equality_and_json() {
        let a = empty_report();
        let mut b = empty_report();
        b.recovery = Some(RecoveryObservations {
            crash_at_ms: 10_000.0,
            time_to_detect_ms: 3_000.0,
            time_to_recover_ms: 4_000.0,
            tuples_lost: 42,
            throughput_dip_depth: 0.5,
            reschedule_attempts: 2,
            roots_replayed: 7,
            tuples_quarantined: 0,
            suppressed_flaps: 3,
        });
        assert_ne!(a, b, "recovery metrics are part of the outcome");
        assert!(!a.to_json().contains("recovery"));
        let j = b.to_json();
        assert!(j.contains("\"recovery\": {\"crash_at_ms\": 10000.0"));
        assert!(j.contains("\"reschedule_attempts\": 2"));
        assert!(j.contains("\"tuples_lost\": 42"));
        assert!(j.contains("\"roots_replayed\": 7"));
        assert!(j.contains("\"suppressed_flaps\": 3"));
    }

    #[test]
    fn replay_totals_serialize_only_when_replay_ran() {
        let legacy = empty_report();
        let j = legacy.to_json();
        assert!(
            !j.contains("roots_emitted") && !j.contains("quarantined"),
            "replay-disabled runs keep the legacy totals layout: {j}"
        );
        assert!(j.contains("\"tuples_lost\": 0}"), "totals still close: {j}");

        let mut replay = empty_report();
        replay.totals.roots_emitted = 10;
        replay.totals.roots_completed = 8;
        replay.totals.roots_replayed = 3;
        replay.totals.roots_quarantined = 1;
        replay.totals.tuples_quarantined = 10;
        replay.totals.roots_in_flight = 1;
        let j = replay.to_json();
        assert!(j.contains("\"roots_emitted\": 10"));
        assert!(j.contains("\"tuples_quarantined\": 10"));
        assert!(j.contains("\"roots_in_flight\": 1}"));
        assert_ne!(legacy, replay, "replay counters are part of the outcome");
    }

    #[test]
    fn sanity_sweep_flags_bad_metrics_and_passes_clean_reports() {
        let clean = empty_report();
        assert!(clean.sanity_violations().is_empty());

        let mut bad = empty_report();
        bad.inter_rack_mb = f64::NAN;
        bad.node_utilization.push(("n0".to_owned(), -0.5));
        bad.totals.tuples_processed = u64::MAX - 3;
        let violations = bad.sanity_violations();
        assert_eq!(violations.len(), 3, "{violations:?}");
        let kinds: Vec<&str> = violations.iter().map(InvariantViolation::kind).collect();
        assert!(kinds.contains(&"non_finite_metric"));
        assert!(kinds.contains(&"negative_metric"));
        assert!(kinds.contains(&"counter_overflow"));
        for v in &violations {
            assert!(!v.to_string().is_empty());
        }

        // Wrapped drain accounting is caught instead of underflowing.
        let mut wrapped = empty_report();
        wrapped.totals.roots_emitted = 2;
        wrapped.totals.roots_in_flight = 5;
        let violations = wrapped.sanity_violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind(), "drain_imbalance");
    }

    #[test]
    fn network_section_serializes_only_for_fair_plane_runs() {
        let legacy = empty_report();
        assert!(!legacy.to_json().contains("network"));

        let mut fair = empty_report();
        fair.network = Some(NetworkObservations {
            links: vec![
                LinkUtilization {
                    link: "node0.egress".to_owned(),
                    capacity_mbps: 100.0,
                    mean_utilization: 0.25,
                    saturated_windows: 2,
                    mb_carried: 12.5,
                },
                uplink("rack0", 0.97),
            ],
        });
        assert_ne!(legacy, fair, "network telemetry is part of the outcome");
        let j = fair.to_json();
        assert!(j.contains("\"network\": {\"links\": ["));
        assert!(j.contains("{\"link\": \"node0.egress\", \"capacity_mbps\": 100.0"));
        assert!(j.contains("\"saturated_windows\": 2"));
        assert!(j.contains("\"mb_carried\": 12.5"));
        // Still valid deterministic output with the recovery tail too.
        fair.recovery = Some(RecoveryObservations::default());
        let j = fair.to_json();
        assert!(j.contains("\"recovery\": {"));
        assert!(j.ends_with("]}\n}\n"), "network closes the object: {j}");
    }

    #[test]
    fn trunk_utilization_filters_uplinks_only() {
        let net = NetworkObservations {
            links: vec![
                LinkUtilization {
                    link: "node0.egress".to_owned(),
                    capacity_mbps: 100.0,
                    mean_utilization: 0.9,
                    saturated_windows: 0,
                    mb_carried: 0.0,
                },
                uplink("rack0", 0.97),
                uplink("rack1", 0.10),
                LinkUtilization {
                    link: "rack0.downlink".to_owned(),
                    capacity_mbps: 600.0,
                    mean_utilization: 0.99,
                    saturated_windows: 3,
                    mb_carried: 1.0,
                },
            ],
        };
        assert_eq!(
            net.trunk_utilization(),
            vec![("rack0".to_owned(), 0.97), ("rack1".to_owned(), 0.10)]
        );
    }

    #[test]
    fn sanity_sweep_covers_the_network_section() {
        let mut r = empty_report();
        r.network = Some(NetworkObservations {
            links: vec![uplink("rack0", f64::NAN)],
        });
        let violations = r.sanity_violations();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].kind(), "non_finite_metric");
        assert!(violations[0].to_string().contains("rack0.uplink"));
    }

    #[test]
    fn zero_loss_ratio_excludes_in_flight_roots() {
        let mut r = empty_report();
        assert_eq!(r.zero_loss_ratio(), 1.0, "vacuously lossless when idle");
        r.totals.roots_emitted = 10;
        r.totals.roots_completed = 8;
        r.totals.roots_in_flight = 2;
        assert_eq!(r.zero_loss_ratio(), 1.0, "cut-off roots are not losses");
        r.totals.roots_in_flight = 1;
        r.totals.roots_quarantined = 1;
        r.totals.tuples_quarantined = 10;
        assert!(r.zero_loss_ratio() < 1.0, "a quarantine shows up");
        assert_eq!(r.tuples_quarantined(), 10);
    }
}
