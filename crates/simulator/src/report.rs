//! Simulation results.

use rstorm_metrics::{Summary, ThroughputReport};
use std::collections::BTreeMap;

/// Aggregate event counts of a run (useful for conservation checks and
/// diagnosing overload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimTotals {
    /// Root batches emitted by spouts.
    pub spout_batches: u64,
    /// Batch deliveries to task input queues (including shed ones).
    pub batches_delivered: u64,
    /// Deliveries shed because their root had already timed out.
    pub batches_dropped: u64,
    /// Roots fully processed within the timeout.
    pub roots_completed: u64,
    /// Roots failed by the tuple timeout.
    pub roots_timed_out: u64,
    /// Tuples processed by bolts (stale ones included).
    pub tuples_processed: u64,
    /// Tuples of live roots processed at sinks — the throughput numerator.
    pub tuples_completed: u64,
}

/// The outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Simulated duration in milliseconds.
    pub duration_ms: f64,
    /// Reporting window width in milliseconds.
    pub window_ms: f64,
    /// Per-topology sink throughput (tuples per window, averaged over
    /// sinks — the paper's §6.2 metric).
    pub throughput: BTreeMap<String, ThroughputReport>,
    /// Mean CPU utilization over the machines that did any work —
    /// the Figure 10 metric.
    pub mean_used_cpu_utilization: Summary,
    /// Number of machines that did any work.
    pub used_nodes: usize,
    /// Number of distinct machines each topology's tasks were placed on.
    pub used_nodes_by_topology: BTreeMap<String, usize>,
    /// Per-node CPU utilization (used nodes only, sorted by node name).
    pub node_utilization: Vec<(String, f64)>,
    /// Megabytes carried by the shared inter-rack uplink — the traffic a
    /// colocating scheduler avoids.
    pub inter_rack_mb: f64,
    /// End-to-end latency of completed tuple trees, in milliseconds —
    /// emission at the spout to the last descendant's processing.
    pub latency_ms: Summary,
    /// Aggregate event counts.
    pub totals: SimTotals,
}

impl SimReport {
    /// Mean steady-state throughput of a topology in tuples per window,
    /// skipping `skip` warm-up windows.
    pub fn steady_throughput(&self, topology: &str, skip: usize) -> f64 {
        self.throughput
            .get(topology)
            .map_or(0.0, |t| t.steady_state(skip).mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_throughput_defaults_to_zero() {
        let report = SimReport {
            duration_ms: 1000.0,
            window_ms: 100.0,
            throughput: BTreeMap::new(),
            mean_used_cpu_utilization: Summary::of([]),
            used_nodes: 0,
            used_nodes_by_topology: BTreeMap::new(),
            node_utilization: Vec::new(),
            inter_rack_mb: 0.0,
            latency_ms: Summary::of([]),
            totals: SimTotals::default(),
        };
        assert_eq!(report.steady_throughput("ghost", 0), 0.0);
    }

    #[test]
    fn totals_default_to_zero() {
        let t = SimTotals::default();
        assert_eq!(t.spout_batches, 0);
        assert_eq!(t.roots_completed, 0);
    }
}
