//! The contention-aware network plane: flow-level max-min fair sharing
//! over a hierarchical link graph.
//!
//! Where the legacy path serializes each transfer through FIFO
//! [`crate::servers::LinkServer`]s (per-node NICs plus one *global*
//! uplink), this plane models the paper's Emulab fabric structurally:
//!
//! * a duplex NIC per node — an egress link and an ingress link, each at
//!   the node bandwidth;
//! * a duplex trunk per rack — an uplink (rack → core) and a downlink
//!   (core → rack), each at the inter-rack bandwidth;
//! * one core switch link crossed by every inter-rack flow.
//!
//! A transfer becomes a *flow* with a byte size and a link path
//! (same-rack: egress → ingress; inter-rack: egress → rack uplink →
//! core → rack downlink → ingress). All concurrent flows share the
//! fabric under **max-min fairness**, computed by progressive filling:
//! repeatedly find the most-contended link, freeze its flows at their
//! fair share, subtract, and continue until every flow has a rate.
//!
//! The recompute rule (dslab-style): rates only change when the *set* of
//! flows changes, so the plane re-runs progressive filling on exactly
//! three transitions — flow start, flow finish, and a fault touching
//! link capacity or connectivity. Between transitions every flow
//! progresses linearly at its frozen rate, so the engine needs only one
//! scheduled wake-up at the earliest completion time; a transition
//! re-arms it (stale wake-ups are discarded by generation). Cost per
//! transition is O(links + flows) work and O(1) new heap events.
//!
//! Fault interactions differ deliberately from the legacy path:
//!
//! * a rack partition severs trunk flows **mid-transfer** (their batches
//!   are lost) instead of only dropping new sends;
//! * a link degradation of `extra_ms` multiplies every link's capacity
//!   by `100 / (100 + extra_ms)` — congestion, not added latency.
//!
//! The plane also keeps per-link telemetry: bytes carried, a
//! utilization integral, and per-window saturation flags that the
//! report exports (see `SimReport::network`) and the adaptive plane
//! reads to relieve congested uplinks.

/// A link is *saturated* in a window when its mean utilization over that
/// window is at or above this fraction of (effective) capacity.
pub const SATURATION_THRESHOLD: f64 = 0.95;

/// Reference latency used to convert a legacy degradation (extra
/// milliseconds per transfer) into a capacity factor:
/// `factor = DEGRADE_REF_MS / (DEGRADE_REF_MS + extra_ms)`.
pub const DEGRADE_REF_MS: f64 = 100.0;

/// Flows with fewer remaining bytes than this are complete (guards the
/// float subtraction in `advance` against epsilon residue).
const COMPLETE_EPS_BYTES: f64 = 1e-6;

/// What a link is, for naming and telemetry classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkClass {
    /// A node's send-side NIC.
    Egress,
    /// A node's receive-side NIC.
    Ingress,
    /// A rack's trunk toward the core switch.
    Uplink,
    /// A rack's trunk from the core switch.
    Downlink,
    /// The core switch crossed by every inter-rack flow.
    Core,
}

/// One shared link of the fabric.
#[derive(Debug, Clone)]
struct FairLink {
    /// Base capacity in bytes per millisecond (before degradation).
    capacity: f64,
    /// Cumulative bytes carried.
    served_bytes: f64,
    /// Utilization integral per report window: Σ (rate / effective
    /// capacity) · dt, in milliseconds of busy-equivalent time.
    window_busy_ms: Vec<f64>,
}

/// One in-flight transfer.
#[derive(Debug, Clone, Copy)]
struct Flow {
    /// Admission order, for deterministic completion/severance ordering.
    seq: u64,
    remaining_bytes: f64,
    /// Current max-min rate in bytes/ms (recomputed on transitions).
    rate: f64,
    /// Link ids on the path (up to 5: egress, uplink, core, downlink,
    /// ingress), padded with `u32::MAX`.
    path: [u32; 5],
    path_len: u8,
    /// Dense rack ids, for partition severance. Equal for same-rack flows.
    src_rack: u32,
    dst_rack: u32,
    /// Propagation latency to add after the last byte is serialized.
    latency_ms: f64,
    /// Destination task and batch identity, handed back on completion.
    to_task: u32,
    root: u64,
    tuples: u32,
}

/// A flow the plane finished serializing: deliver `(root, tuples)` to
/// `to_task` at `completed_at + latency_ms`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompletedFlow {
    pub to_task: u32,
    pub root: u64,
    pub tuples: u32,
    pub latency_ms: f64,
}

/// A flow severed mid-transfer by a rack partition: its batch is lost.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SeveredFlow {
    pub root: u64,
    pub tuples: u32,
}

/// The fair-share network plane. Owned by the engine only when
/// `SimConfig::network_model == NetworkModel::Fair`; a `Legacy` run never
/// constructs one, which is what keeps the gate bit-neutral.
#[derive(Debug, Clone)]
pub(crate) struct FairNetwork {
    links: Vec<FairLink>,
    flows: Vec<Flow>,
    nodes: usize,
    racks: usize,
    /// Simulated time of the last `advance` (flows progressed up to here).
    clock_ms: f64,
    /// Capacity multiplier in (0, 1]; < 1 inside a degradation window.
    degrade_factor: f64,
    /// Monotonic flow admission counter.
    next_seq: u64,
    /// Wake-up generation: a scheduled wake event carries the generation
    /// current at scheduling time and is stale (ignored) if the plane has
    /// re-armed since.
    generation: u64,
    window_ms: f64,
    /// Scratch: per-link residual capacity during progressive filling.
    residual: Vec<f64>,
    /// Scratch: per-link count of unfrozen flows during filling.
    unfrozen: Vec<u32>,
    /// Scratch: indices of flows not yet frozen during filling.
    worklist: Vec<u32>,
}

/// Per-link telemetry at the report boundary.
#[derive(Debug, Clone)]
pub(crate) struct LinkStats {
    pub class: LinkClass,
    /// Dense node id (NICs) or rack id (trunks); 0 for the core.
    pub owner: usize,
    pub capacity_mbps: f64,
    pub carried_bytes: f64,
    /// Mean utilization over the run (busy-equivalent ms / elapsed ms).
    pub mean_utilization: f64,
    /// Complete windows whose mean utilization reached
    /// [`SATURATION_THRESHOLD`].
    pub saturated_windows: u64,
}

impl FairNetwork {
    /// Builds the fabric for `nodes` nodes in `racks` racks. Link ids:
    /// `[0, nodes)` egress NICs, `[nodes, 2·nodes)` ingress NICs, then
    /// per-rack uplinks, per-rack downlinks, and finally the core.
    pub fn new(
        nodes: usize,
        racks: usize,
        node_mbps: f64,
        trunk_mbps: f64,
        window_ms: f64,
        sim_time_ms: f64,
    ) -> Self {
        let windows = (sim_time_ms / window_ms).ceil().max(1.0) as usize;
        let mk = |mbps: f64| FairLink {
            capacity: mbps * 125.0, // Mbps → bytes/ms
            served_bytes: 0.0,
            window_busy_ms: vec![0.0; windows],
        };
        let mut links = Vec::with_capacity(2 * nodes + 2 * racks + 1);
        links.extend((0..2 * nodes).map(|_| mk(node_mbps)));
        links.extend((0..2 * racks).map(|_| mk(trunk_mbps)));
        // The core is sized non-blocking — every rack can run its trunk
        // at full rate — but still tracked so its telemetry exists.
        links.push(mk(trunk_mbps * racks.max(1) as f64));
        let n_links = links.len();
        Self {
            links,
            flows: Vec::new(),
            nodes,
            racks,
            clock_ms: 0.0,
            degrade_factor: 1.0,
            next_seq: 0,
            generation: 0,
            window_ms,
            residual: vec![0.0; n_links],
            unfrozen: vec![0; n_links],
            worklist: Vec::new(),
        }
    }

    fn egress(&self, node: usize) -> u32 {
        node as u32
    }
    fn ingress(&self, node: usize) -> u32 {
        (self.nodes + node) as u32
    }
    fn uplink(&self, rack: usize) -> u32 {
        (2 * self.nodes + rack) as u32
    }
    fn downlink(&self, rack: usize) -> u32 {
        (2 * self.nodes + self.racks + rack) as u32
    }
    fn core(&self) -> u32 {
        (2 * self.nodes + 2 * self.racks) as u32
    }

    /// The generation a wake event must carry to be fresh.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Re-arms the wake-up: bumps the generation and returns the next
    /// completion time, or `None` when no flow is active.
    pub fn arm_wake(&mut self) -> Option<f64> {
        self.generation += 1;
        self.next_completion()
    }

    fn next_completion(&self) -> Option<f64> {
        let mut earliest: Option<f64> = None;
        for f in &self.flows {
            let t = self.clock_ms + f.remaining_bytes / f.rate;
            // A rate of zero (float dust at full saturation) yields an
            // infinite completion; never schedule a wake for it — the
            // next real transition recomputes and un-sticks the flow.
            if !t.is_finite() {
                continue;
            }
            earliest = Some(match earliest {
                Some(e) if e <= t => e,
                _ => t,
            });
        }
        earliest
    }

    /// Admits a transfer of `bytes` from `src_node` to `dst_node` at time
    /// `now`; the plane hands the batch back through a later transition
    /// when the last byte clears the fabric. `inter_rack` selects the
    /// five-hop trunk path; same-rack flows touch only the two NICs.
    /// Returns any *other* flows that completed at the moment of
    /// admission (every transition must surface completions, or a flow
    /// finishing exactly at an admission instant would be lost when the
    /// caller re-arms the wake).
    #[allow(clippy::too_many_arguments)] // dense hot-path call, no struct churn
    pub fn admit(
        &mut self,
        now: f64,
        src_node: usize,
        dst_node: usize,
        src_rack: usize,
        dst_rack: usize,
        inter_rack: bool,
        bytes: f64,
        latency_ms: f64,
        to_task: u32,
        root: u64,
        tuples: u32,
    ) -> Vec<CompletedFlow> {
        let done = self.advance(now);
        let mut path = [u32::MAX; 5];
        let path_len = if inter_rack {
            path[0] = self.egress(src_node);
            path[1] = self.uplink(src_rack);
            path[2] = self.core();
            path[3] = self.downlink(dst_rack);
            path[4] = self.ingress(dst_node);
            5
        } else {
            path[0] = self.egress(src_node);
            path[1] = self.ingress(dst_node);
            2
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.flows.push(Flow {
            seq,
            remaining_bytes: bytes,
            rate: 0.0,
            path,
            path_len,
            src_rack: src_rack as u32,
            dst_rack: dst_rack as u32,
            latency_ms,
            to_task,
            root,
            tuples,
        });
        self.recompute();
        done
    }

    /// Progresses every flow to `now` at its frozen rate, accumulates
    /// telemetry, removes completed flows and returns them in admission
    /// order, and recomputes the survivors' rates when anything finished.
    pub fn advance(&mut self, now: f64) -> Vec<CompletedFlow> {
        let dt = now - self.clock_ms;
        if dt > 0.0 && !self.flows.is_empty() {
            let t0 = self.clock_ms;
            let window_ms = self.window_ms;
            for f in &self.flows {
                if f.rate <= 0.0 {
                    continue;
                }
                // Clamp to the flow's own completion so an overshooting
                // advance (time past the last byte) never over-counts.
                let active_ms = (f.remaining_bytes / f.rate).min(dt);
                let served = f.rate * active_ms;
                for &l in &f.path[..f.path_len as usize] {
                    let link = &mut self.links[l as usize];
                    link.served_bytes += served;
                    let eff = link.capacity * self.degrade_factor;
                    // Max-min allocation keeps Σ rates ≤ eff per link, so
                    // summed fractions never exceed one per window.
                    let frac = (f.rate / eff).min(1.0);
                    // Split the active interval across report windows so
                    // saturation flags land where the load happened.
                    let t1 = t0 + active_ms;
                    let mut seg = t0;
                    while seg < t1 {
                        let w = (seg / window_ms).floor() as usize;
                        let end = ((w as f64 + 1.0) * window_ms).min(t1);
                        if let Some(bucket) = link.window_busy_ms.get_mut(w) {
                            *bucket += frac * (end - seg);
                        }
                        seg = end;
                    }
                }
            }
            for f in &mut self.flows {
                f.remaining_bytes -= f.rate * dt;
            }
        }
        self.clock_ms = self.clock_ms.max(now);

        let mut done: Vec<Flow> = Vec::new();
        let mut i = 0;
        while i < self.flows.len() {
            if self.flows[i].remaining_bytes <= COMPLETE_EPS_BYTES {
                done.push(self.flows.swap_remove(i));
            } else {
                i += 1;
            }
        }
        if done.is_empty() {
            return Vec::new();
        }
        done.sort_by_key(|f| f.seq);
        self.recompute();
        done.iter()
            .map(|f| CompletedFlow {
                to_task: f.to_task,
                root: f.root,
                tuples: f.tuples,
                latency_ms: f.latency_ms,
            })
            .collect()
    }

    /// Applies a degradation transition: flows progress to `now` under
    /// the old factor, then every link's capacity is multiplied by
    /// `DEGRADE_REF_MS / (DEGRADE_REF_MS + extra_ms)` — the legacy
    /// knob's milliseconds reinterpreted as congestion. Returns any
    /// flows that completed before the switch.
    pub fn set_degrade(&mut self, now: f64, extra_ms: f64) -> Vec<CompletedFlow> {
        let done = self.advance(now);
        self.degrade_factor = DEGRADE_REF_MS / (DEGRADE_REF_MS + extra_ms.max(0.0));
        self.recompute();
        done
    }

    /// Severs every trunk flow touching `rack` mid-transfer (the
    /// partition cuts the rack's uplink and downlink): the severed
    /// batches are returned for loss accounting, in admission order,
    /// together with any flows that completed before the cut. Same-rack
    /// flows inside the partitioned rack are untouched.
    pub fn sever_rack(&mut self, now: f64, rack: usize) -> (Vec<CompletedFlow>, Vec<SeveredFlow>) {
        let done = self.advance(now);
        let rack = rack as u32;
        let mut severed: Vec<Flow> = Vec::new();
        let mut i = 0;
        while i < self.flows.len() {
            let f = &self.flows[i];
            let crosses_trunk = f.path_len == 5 && (f.src_rack == rack || f.dst_rack == rack);
            if crosses_trunk {
                severed.push(self.flows.swap_remove(i));
            } else {
                i += 1;
            }
        }
        if !severed.is_empty() {
            severed.sort_by_key(|f| f.seq);
            self.recompute();
        }
        let severed = severed
            .iter()
            .map(|f| SeveredFlow {
                root: f.root,
                tuples: f.tuples,
            })
            .collect();
        (done, severed)
    }

    /// Max-min rates by progressive filling: repeatedly find the link
    /// whose equal split among its unfrozen flows is smallest, freeze
    /// those flows at that share, subtract the share from every link on
    /// their paths, and repeat until every flow is frozen. Ties break on
    /// the lowest link id, so the result is independent of flow storage
    /// order. The worklist shrinks by every frozen flow, so each round
    /// costs O(links + unfrozen flows) and there are at most as many
    /// rounds as distinct bottleneck links.
    fn recompute(&mut self) {
        for (l, link) in self.links.iter().enumerate() {
            self.residual[l] = link.capacity * self.degrade_factor;
            self.unfrozen[l] = 0;
        }
        for f in &mut self.flows {
            f.rate = 0.0;
            for &l in &f.path[..f.path_len as usize] {
                self.unfrozen[l as usize] += 1;
            }
        }
        self.worklist.clear();
        self.worklist.extend(0..self.flows.len() as u32);
        while !self.worklist.is_empty() {
            let mut bottleneck = usize::MAX;
            let mut share = f64::INFINITY;
            for l in 0..self.links.len() {
                if self.unfrozen[l] == 0 {
                    continue;
                }
                let s = self.residual[l] / f64::from(self.unfrozen[l]);
                if s < share {
                    share = s;
                    bottleneck = l;
                }
            }
            debug_assert!(bottleneck != usize::MAX, "unfrozen flows imply a link");
            // Float subtraction can push a residual a hair below zero;
            // a rate must never be negative (it would run flows backward).
            let share = share.max(0.0);
            let mut i = 0;
            while i < self.worklist.len() {
                let fi = self.worklist[i] as usize;
                let on_bottleneck = self.flows[fi].path[..self.flows[fi].path_len as usize]
                    .contains(&(bottleneck as u32));
                if !on_bottleneck {
                    i += 1;
                    continue;
                }
                self.flows[fi].rate = share;
                for &l in &self.flows[fi].path[..self.flows[fi].path_len as usize] {
                    self.residual[l as usize] -= share;
                    self.unfrozen[l as usize] -= 1;
                }
                self.worklist.swap_remove(i);
            }
        }
    }

    /// Whether any flow is in flight.
    #[cfg(test)]
    pub fn has_flows(&self) -> bool {
        !self.flows.is_empty()
    }

    /// Total bytes carried by the rack uplinks — the fair-plane
    /// equivalent of the legacy global uplink's served-byte counter.
    pub fn uplink_bytes(&self) -> f64 {
        (0..self.racks)
            .map(|r| self.links[self.uplink(r) as usize].served_bytes)
            .sum()
    }

    /// Per-link telemetry over `[0, elapsed_ms]`, in link-id order.
    pub fn link_stats(&self, elapsed_ms: f64) -> Vec<LinkStats> {
        let complete = (elapsed_ms / self.window_ms).floor() as usize;
        self.links
            .iter()
            .enumerate()
            .map(|(l, link)| {
                let (class, owner) = self.classify(l);
                let busy: f64 = link.window_busy_ms.iter().sum();
                let saturated = link
                    .window_busy_ms
                    .iter()
                    .take(complete)
                    .filter(|&&b| b >= SATURATION_THRESHOLD * self.window_ms)
                    .count() as u64;
                LinkStats {
                    class,
                    owner,
                    capacity_mbps: link.capacity / 125.0,
                    carried_bytes: link.served_bytes,
                    mean_utilization: if elapsed_ms > 0.0 {
                        (busy / elapsed_ms).min(1.0)
                    } else {
                        0.0
                    },
                    saturated_windows: saturated,
                }
            })
            .collect()
    }

    fn classify(&self, l: usize) -> (LinkClass, usize) {
        if l < self.nodes {
            (LinkClass::Egress, l)
        } else if l < 2 * self.nodes {
            (LinkClass::Ingress, l - self.nodes)
        } else if l < 2 * self.nodes + self.racks {
            (LinkClass::Uplink, l - 2 * self.nodes)
        } else if l < 2 * self.nodes + 2 * self.racks {
            (LinkClass::Downlink, l - 2 * self.nodes - self.racks)
        } else {
            (LinkClass::Core, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 racks × 2 nodes, 100 Mbps NICs (12 500 B/ms), 600 Mbps trunks.
    fn fabric() -> FairNetwork {
        FairNetwork::new(4, 2, 100.0, 600.0, 10_000.0, 60_000.0)
    }

    fn admit_inter_rack(net: &mut FairNetwork, now: f64, bytes: f64, tag: u64) {
        // node 0 (rack 0) → node 2 (rack 1).
        net.admit(now, 0, 2, 0, 1, true, bytes, 2.0, 9, tag, 10);
    }

    #[test]
    fn lone_flow_runs_at_nic_speed() {
        let mut net = fabric();
        // 12 500 bytes through a 12 500 B/ms NIC: done at t=1.
        admit_inter_rack(&mut net, 0.0, 12_500.0, 1);
        assert!((net.next_completion().unwrap() - 1.0).abs() < 1e-9);
        let done = net.advance(1.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].root, 1);
        assert_eq!(done[0].to_task, 9);
        assert!((done[0].latency_ms - 2.0).abs() < 1e-12);
        assert!(!net.has_flows());
    }

    #[test]
    fn two_flows_on_one_trunk_each_get_half() {
        // Two flows from different source nodes into the same destination
        // NIC: the shared ingress NIC is the bottleneck and each flow
        // gets half of it (the fair-share unit contract of the issue).
        let mut net = FairNetwork::new(4, 1, 100.0, 600.0, 10_000.0, 60_000.0);
        net.admit(0.0, 0, 2, 0, 0, false, 12_500.0, 0.0, 1, 1, 10);
        net.admit(0.0, 1, 2, 0, 0, false, 12_500.0, 0.0, 1, 2, 10);
        // Each runs at 6 250 B/ms → both complete at t = 2, not t = 1.
        assert!((net.next_completion().unwrap() - 2.0).abs() < 1e-9);
        let done = net.advance(2.0);
        assert_eq!(done.len(), 2);
        // Admission order is preserved in the completion list.
        assert_eq!(done[0].root, 1);
        assert_eq!(done[1].root, 2);
    }

    #[test]
    fn trunk_is_shared_max_min_fairly() {
        // Six flows from six distinct nodes of rack 0 to six distinct
        // nodes of rack 1: NICs are uncontended (100 Mbps each), but the
        // 600 Mbps ≙ 75 000 B/ms uplink carries all six. Equal split
        // gives each 12 500 B/ms — exactly NIC speed, the knee. A
        // seventh flow pushes the trunk below NIC speed for everyone.
        let mut net = FairNetwork::new(14, 2, 100.0, 600.0, 10_000.0, 60_000.0);
        for k in 0..6 {
            net.admit(0.0, k, 7 + k, 0, 1, true, 12_500.0, 0.0, 0, k as u64, 10);
        }
        assert!((net.next_completion().unwrap() - 1.0).abs() < 1e-9);
        let mut net7 = FairNetwork::new(16, 2, 100.0, 600.0, 10_000.0, 60_000.0);
        for k in 0..7 {
            net7.admit(0.0, k, 8 + k, 0, 1, true, 12_500.0, 0.0, 0, k as u64, 10);
        }
        // 75 000 / 7 ≈ 10 714 B/ms per flow: slower than the NIC.
        let t = net7.next_completion().unwrap();
        assert!(t > 1.1, "seven flows must overrun the trunk, t={t}");
    }

    #[test]
    fn flow_finish_releases_capacity_to_survivors() {
        // A short and a long flow share one ingress NIC. While both are
        // active each gets half; when the short one finishes the
        // survivor speeds back up to the full rate.
        let mut net = FairNetwork::new(4, 1, 100.0, 600.0, 10_000.0, 60_000.0);
        net.admit(0.0, 0, 2, 0, 0, false, 12_500.0, 0.0, 1, 1, 10);
        net.admit(0.0, 1, 2, 0, 0, false, 25_000.0, 0.0, 1, 2, 10);
        // At half rate (6 250 B/ms) the short flow finishes at t = 2.
        let done = net.advance(2.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].root, 1);
        // Survivor: 12 500 bytes left, now at full 12 500 B/ms → t = 3.
        assert!((net.next_completion().unwrap() - 3.0).abs() < 1e-9);
        let done = net.advance(3.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].root, 2);
    }

    #[test]
    fn partition_severs_trunk_flows_but_not_intra_rack_ones() {
        let mut net = fabric();
        admit_inter_rack(&mut net, 0.0, 50_000.0, 1);
        // Same-rack flow inside rack 0: must survive the partition.
        net.admit(0.0, 0, 1, 0, 0, false, 50_000.0, 0.0, 3, 2, 10);
        let (done, severed) = net.sever_rack(0.5, 0);
        assert!(done.is_empty());
        assert_eq!(severed.len(), 1);
        assert_eq!(severed[0].root, 1);
        assert!(net.has_flows(), "the intra-rack flow keeps going");
        let done = net.advance(60_000.0);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].root, 2);
    }

    #[test]
    fn degradation_multiplies_capacity_not_latency() {
        let mut net = fabric();
        admit_inter_rack(&mut net, 0.0, 12_500.0, 1);
        // extra = 100 ms → factor 0.5: the lone flow now runs at half
        // the NIC rate and finishes at t = 2 instead of t = 1.
        let done = net.set_degrade(0.0, 100.0);
        assert!(done.is_empty());
        assert!((net.next_completion().unwrap() - 2.0).abs() < 1e-9);
        // Healing restores full capacity for the remaining bytes.
        net.advance(1.0); // half transferred
        net.set_degrade(1.0, 0.0);
        assert!((net.next_completion().unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn telemetry_tracks_utilization_and_saturation() {
        let mut net = fabric();
        // One flow that keeps node 0's egress NIC (12 500 B/ms) busy for
        // exactly 25 s: the first two complete 10 s windows saturate, the
        // third is only half busy.
        net.admit(0.0, 0, 1, 0, 0, false, 12_500.0 * 25_000.0, 0.0, 1, 1, 10);
        net.advance(60_000.0);
        let stats = net.link_stats(60_000.0);
        let egress0 = &stats[0];
        assert_eq!(egress0.class, LinkClass::Egress);
        assert_eq!(egress0.owner, 0);
        assert!((egress0.capacity_mbps - 100.0).abs() < 1e-9);
        assert_eq!(
            egress0.saturated_windows, 2,
            "25 s of a line-rate flow saturates exactly the first two \
             complete 10 s windows"
        );
        let expected = 25_000.0 / 60_000.0;
        assert!((egress0.mean_utilization - expected).abs() < 1e-9);
        assert!((egress0.carried_bytes - 12_500.0 * 25_000.0).abs() < 1.0);
        // An untouched link reports zeros.
        let idle = &stats[1];
        assert_eq!(idle.saturated_windows, 0);
        assert_eq!(idle.carried_bytes, 0.0);
    }

    #[test]
    fn uplink_bytes_counts_trunk_traffic_only() {
        let mut net = fabric();
        admit_inter_rack(&mut net, 0.0, 10_000.0, 1);
        net.admit(0.0, 0, 1, 0, 0, false, 99_000.0, 0.0, 3, 2, 10);
        net.advance(60_000.0);
        assert!((net.uplink_bytes() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn wake_generations_invalidate_stale_events() {
        let mut net = fabric();
        admit_inter_rack(&mut net, 0.0, 12_500.0, 1);
        let g1 = net.generation();
        let t1 = net.arm_wake().unwrap();
        assert!(net.generation() > g1, "arming bumps the generation");
        admit_inter_rack(&mut net, 0.0, 12_500.0, 2);
        let t2 = net.arm_wake().unwrap();
        assert!(t2 > t1, "sharing slowed both flows down");
    }
}
