//! A generational slab for in-flight tuple trees.
//!
//! Every spout emission creates a root whose descendants are tracked
//! until the tree completes or times out. The reference engine keeps
//! these in a `HashMap<u64, RootState>`, paying a hash plus a probe per
//! touch and an allocation per insert at scale. The slab stores roots in
//! a flat `Vec` and hands out handles that embed the slot index (low 32
//! bits) and a per-slot generation (high 32 bits): lookups are a bounds
//! check plus a generation compare, and completed slots recycle through a
//! free list, so steady-state root turnover allocates nothing.
//!
//! The generation makes stale handles (e.g. a `RootTimeout` event for a
//! root that completed and whose slot was reused) miss safely — exactly
//! the semantics the reference engine gets from `HashMap::get` on a
//! removed key.

/// State of one in-flight tuple tree.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RootState {
    /// Outstanding descendant batches (including in-flight transfers).
    pub pending: u32,
    /// Emission time of the root batch.
    pub born: f64,
    /// Tuple-timeout deadline.
    pub deadline: f64,
    /// Global index of the emitting spout task.
    pub spout: u32,
    /// True once the tuple timeout fired.
    pub failed: bool,
    /// Of `pending`, the slots held by batches destroyed by a node
    /// crash. They can never be released by processing; the timeout
    /// drains them (see the engine's `root_timeout`).
    pub lost: u32,
    /// Replay attempt number: 0 for a fresh emission, n for the n-th
    /// spout re-emission of this logical root (replay mode only).
    pub attempt: u32,
    /// Tuples destroyed by crashes across this attempt and all prior
    /// attempts of the same logical root. Charged to `tuples_lost` only
    /// if the root quarantines — a replayed-then-acked root retransmitted
    /// the data, so nothing was lost (replay mode only).
    pub lost_tuples: u64,
}

#[derive(Debug, Clone)]
struct Slot {
    gen: u32,
    occupied: bool,
    state: RootState,
}

/// Slab of in-flight roots with generational handles and a free-list
/// pool. See the module docs.
#[derive(Debug, Default)]
pub(crate) struct RootSlab {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: u64,
    /// Inserts served from the free list (recycled allocations).
    pub pool_hits: u64,
    /// Inserts that had to grow the slab.
    pub pool_misses: u64,
    /// High-water mark of simultaneously live roots.
    pub max_live: u64,
}

impl RootSlab {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a root, returning its handle.
    pub fn insert(&mut self, state: RootState) -> u64 {
        self.live += 1;
        self.max_live = self.max_live.max(self.live);
        if let Some(idx) = self.free.pop() {
            self.pool_hits += 1;
            let slot = &mut self.slots[idx as usize];
            debug_assert!(!slot.occupied);
            slot.occupied = true;
            slot.state = state;
            (u64::from(slot.gen) << 32) | u64::from(idx)
        } else {
            self.pool_misses += 1;
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                occupied: true,
                state,
            });
            u64::from(idx)
        }
    }

    /// Looks up a live root; `None` for completed/stale handles.
    pub fn get(&self, handle: u64) -> Option<&RootState> {
        let slot = self.slots.get((handle & 0xFFFF_FFFF) as usize)?;
        (slot.occupied && slot.gen == (handle >> 32) as u32).then_some(&slot.state)
    }

    /// Mutable lookup of a live root.
    pub fn get_mut(&mut self, handle: u64) -> Option<&mut RootState> {
        let slot = self.slots.get_mut((handle & 0xFFFF_FFFF) as usize)?;
        (slot.occupied && slot.gen == (handle >> 32) as u32).then_some(&mut slot.state)
    }

    /// Removes a root, returning its slot to the pool. Stale handles are
    /// ignored (like `HashMap::remove` on an absent key).
    pub fn remove(&mut self, handle: u64) {
        let idx = (handle & 0xFFFF_FFFF) as usize;
        let Some(slot) = self.slots.get_mut(idx) else {
            return;
        };
        if !slot.occupied || slot.gen != (handle >> 32) as u32 {
            return;
        }
        slot.occupied = false;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx as u32);
        self.live -= 1;
    }

    /// Number of live roots whose tuple timeout has not fired — the
    /// attempts that can still ack. Used by the replay plane's drain
    /// invariant: debug builds assert it, checked mode
    /// (`SimConfig::check_invariants`) evaluates it in every profile.
    /// O(slots), so it only runs on those paths.
    pub fn unfailed_live(&self) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.occupied && !s.state.failed)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root(spout: u32) -> RootState {
        RootState {
            pending: 1,
            born: 0.0,
            deadline: 100.0,
            spout,
            failed: false,
            lost: 0,
            attempt: 0,
            lost_tuples: 0,
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    fn unfailed_live_skips_timed_out_roots() {
        let mut slab = RootSlab::new();
        let a = slab.insert(root(0));
        let _b = slab.insert(root(1));
        assert_eq!(slab.unfailed_live(), 2);
        slab.get_mut(a).unwrap().failed = true;
        assert_eq!(slab.unfailed_live(), 1);
        slab.remove(a);
        assert_eq!(slab.unfailed_live(), 1);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = RootSlab::new();
        let a = slab.insert(root(1));
        let b = slab.insert(root(2));
        assert_eq!(slab.get(a).unwrap().spout, 1);
        assert_eq!(slab.get(b).unwrap().spout, 2);
        slab.get_mut(a).unwrap().pending += 3;
        assert_eq!(slab.get(a).unwrap().pending, 4);
        slab.remove(a);
        assert!(slab.get(a).is_none());
        assert!(slab.get(b).is_some());
    }

    #[test]
    fn recycled_slot_invalidates_old_handle() {
        let mut slab = RootSlab::new();
        let a = slab.insert(root(1));
        slab.remove(a);
        let b = slab.insert(root(2));
        // Same slot, new generation: the recycled slot must not be
        // reachable through the stale handle.
        assert_eq!(a & 0xFFFF_FFFF, b & 0xFFFF_FFFF);
        assert_ne!(a, b);
        assert!(slab.get(a).is_none());
        assert!(slab.get_mut(a).is_none());
        assert_eq!(slab.get(b).unwrap().spout, 2);
        // Removing through the stale handle is a no-op.
        slab.remove(a);
        assert!(slab.get(b).is_some());
    }

    #[test]
    fn pool_counters_track_reuse() {
        let mut slab = RootSlab::new();
        let mut handles: Vec<u64> = (0..10).map(|i| slab.insert(root(i))).collect();
        assert_eq!(slab.pool_misses, 10);
        assert_eq!(slab.pool_hits, 0);
        for h in handles.drain(..) {
            slab.remove(h);
        }
        for i in 0..25 {
            handles.push(slab.insert(root(i)));
        }
        // 10 inserts recycled freed slots, 15 grew the slab.
        assert_eq!(slab.pool_hits, 10);
        assert_eq!(slab.pool_misses, 25);
        assert_eq!(slab.max_live, 25);
    }

    #[test]
    fn double_remove_is_safe() {
        let mut slab = RootSlab::new();
        let a = slab.insert(root(0));
        slab.remove(a);
        slab.remove(a);
        assert_eq!(slab.pool_hits + slab.pool_misses, 1);
        // The free list holds the slot exactly once.
        let b = slab.insert(root(1));
        let c = slab.insert(root(2));
        assert_ne!(b & 0xFFFF_FFFF, c & 0xFFFF_FFFF);
    }
}
