//! # rstorm-sim
//!
//! A deterministic discrete-event simulator of a Storm cluster executing
//! scheduled topologies — the substitute for the paper's Emulab testbed
//! (see DESIGN.md §3 for the substitution argument).
//!
//! The simulator prices exactly the two effects the paper's evaluation
//! hinges on:
//!
//! * **Network position of communicating tasks.** Tuple batches move
//!   between tasks through FIFO link servers: the producer node's NIC
//!   egress, the shared inter-rack uplink (when racks are crossed) and the
//!   consumer node's NIC ingress, plus a fixed per-relation latency
//!   (intra-worker < intra-node < intra-rack < inter-rack, defaults from
//!   the Emulab setup: 100 Mbps NICs, 4 ms inter-rack RTT).
//! * **CPU contention.** Each node's CPU is a FIFO work server with
//!   aggregate rate equal to its core count; a single task can never run
//!   faster than one core. Over-committed nodes accumulate backlog, which
//!   propagates upstream as backpressure.
//!
//! Flow control mirrors Storm: each spout task has a `max.spout.pending`
//! credit budget, tuple trees are tracked per emitted root batch, and a
//! root that is not fully processed within the tuple timeout is failed
//! (its credit is returned — a replay in real Storm — and any work it
//! still causes is wasted). Sink throughput counts only tuples from live,
//! non-timed-out roots, which is what makes an over-committed schedule
//! "grind to a near halt" (§6.5) rather than degrade gracefully.
//!
//! ## Example
//!
//! ```
//! use rstorm_topology::{TopologyBuilder, ExecutionProfile};
//! use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
//! use rstorm_core::{RStormScheduler, Scheduler, GlobalState};
//! use rstorm_sim::{SimConfig, Simulation};
//!
//! let mut b = TopologyBuilder::new("demo");
//! b.set_spout("src", 2).set_profile(ExecutionProfile::network_bound(100));
//! b.set_bolt("sink", 2)
//!     .shuffle_grouping("src")
//!     .set_profile(ExecutionProfile::network_bound(100).into_sink());
//! let topology = b.build().unwrap();
//!
//! let cluster = ClusterBuilder::new()
//!     .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 4)
//!     .build()
//!     .unwrap();
//! let mut state = GlobalState::new(&cluster);
//! let assignment = RStormScheduler::new()
//!     .schedule(&topology, &cluster, &mut state)
//!     .unwrap();
//!
//! let mut sim = Simulation::new(cluster, SimConfig::quick());
//! sim.add_topology(&topology, &assignment);
//! let report = sim.run();
//! assert!(report.throughput["demo"].steady_state(1).mean > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod build;
pub mod chaos;
mod config;
mod event;
pub mod faults;
pub mod fuzz;
pub mod network;
pub mod rebalance;
mod reference;
mod report;
mod servers;
mod sim;
mod slab;
pub mod sweep;

pub use chaos::{
    run_control_outage, run_crash_recover, run_crash_recover_with, run_fault_plan_with,
    try_run_crash_recover_with, ChaosConfig, ChaosError, ChaosOutcome, ControlOutageConfig,
    ControlOutcome, PlanOutcome, ReconcileAudit,
};
pub use config::{NetworkModel, SimConfig};
pub use faults::{FaultEvent, FaultPlan, ParsePlanError};
pub use fuzz::{
    check_fault_plan, run_fuzz_campaign, shrink_fault_plan, FuzzConfig, FuzzOutcome,
    FuzzReproducer, FuzzVerdict, OracleKind,
};
pub use network::LinkClass;
pub use rebalance::{
    refined_clone, run_adaptive_rebalance, try_run_adaptive_rebalance, AdaptiveConfig,
    AdaptiveOutcome,
};
pub use reference::ReferenceSimulation;
pub use report::{
    InvariantViolation, LinkUtilization, NetworkObservations, RecoveryObservations, SimDebugStats,
    SimReport, SimTotals,
};
pub use sim::{CheckedReport, Simulation};
pub use sweep::{
    run_sweep, FaultSpec, ParseRangeError, SeedRange, SweepCase, SweepGrid, SweepJob, SweepOutcome,
    SweepRow, SweepSummary,
};
