//! The invariant-directed chaos fuzzer.
//!
//! [`run_fuzz_campaign`] samples structured [`FaultPlan`]s from the fault
//! grammar — crash/recover pairs, lasting crashes, flap storms, correlated
//! crash bursts, rack partitions, link degradations, background-traffic
//! burst trains, Nimbus outages and control-channel loss windows — runs
//! each plan
//! through both planes of [`crate::chaos::run_fault_plan_with`], and
//! checks an **oracle set** per run (see [`OracleKind`]):
//!
//! * the replay-plane **drain invariant** and its sibling accounting
//!   checks, promoted from `debug_assert!` to release-build
//!   [`crate::InvariantViolation`]s via
//!   [`crate::SimConfig::check_invariants`];
//! * **zero loss** for plans that are survivable *by construction* — when
//!   `(max_replays + 1) * tuple_timeout_ms` exceeds the horizon no root
//!   can exhaust its budget, so every settled root must have completed;
//! * **detection liveness** — a node silent long past the heartbeat miss
//!   window (its own crash or its rack's partition) must be declared dead
//!   by the control plane — with a Nimbus-free span requirement when the
//!   plan crashes the control plane itself, and skipped entirely for a
//!   journal-less (structurally blind) failover;
//! * the two **reconciliation oracles** for plans with control-plane
//!   faults — the quiesced post-failover placement must cover as many
//!   tasks as a from-scratch reschedule on the survivors, and no task
//!   may end up double-placed or orphaned (see
//!   [`crate::chaos::ReconcileAudit`]);
//! * **routing parity** — re-running with the incremental-routing flag
//!   flipped must reproduce the report bit for bit;
//! * **determinism** — an identical re-run must reproduce the report and
//!   the control-plane event log bit for bit.
//!
//! A violating plan is then **shrunk** delta-debugging style
//! ([`shrink_fault_plan`]): drop event chunks, then single events, then
//! tighten partition/degradation windows — accepting a candidate only if
//! it still trips the *same* oracle. Because flap storms and crash bursts
//! pre-expand into crash/recover events, "merge the flaps" falls out of
//! plain event dropping. The minimal reproducer serializes to the
//! line-oriented corpus format ([`FuzzReproducer::to_text`]) that
//! `tests/fuzz_corpus/` replays forever after.
//!
//! Everything is deterministic: iteration `k` of a campaign draws from
//! `StdRng` seeded by a pure function of `(seed, k)`, plans are generated
//! on a 500 ms time grid, the worker pool assigns iterations to slots by
//! index (the [`crate::sweep`] pool idiom), and shrinking is a serial
//! post-pass — so the same seed always yields byte-identical campaign
//! logs, whatever the worker count.

use crate::chaos::run_fault_plan_with;
use crate::config::SimConfig;
use crate::faults::{FaultEvent, FaultPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rstorm_cluster::Cluster;
use rstorm_core::{RecoveryConfig, RecoveryEvent, Scheduler};
use rstorm_topology::Topology;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// The time grid plans are generated on: every sampled instant and
/// duration is a multiple of this, which keeps shrunk windows readable
/// and gives window-tightening a natural floor.
pub const QUANTUM_MS: f64 = 500.0;

/// Upper bound on oracle evaluations one shrink may spend. Each
/// evaluation is up to three simulation runs, so this caps a pathological
/// shrink at a bounded (still generous) budget; real reproducers converge
/// in far fewer.
const SHRINK_CHECK_BUDGET: usize = 512;

/// Which oracle a fault plan tripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleKind {
    /// The checked engine reported an accounting violation; the payload
    /// is [`crate::InvariantViolation::kind`] (e.g. `drain_imbalance`),
    /// which the shrinker preserves.
    Invariant(String),
    /// A survivable-by-construction plan still lost roots
    /// (`zero_loss_ratio != 1.0`).
    ZeroLoss,
    /// A node was silent far past the heartbeat miss window yet the
    /// control plane never declared it dead.
    DetectLiveness,
    /// Flipping [`SimConfig::incremental_routing`] changed the report.
    RoutingParity,
    /// An identical re-run produced different bits.
    Determinism,
    /// After a control-plane failover the quiesced placement covered
    /// fewer (or more) tasks than a from-scratch reschedule of the same
    /// topology on the surviving cluster — reconciliation left capacity
    /// on the table (see
    /// [`crate::chaos::ReconcileAudit::converged`]).
    ReconcileConvergence,
    /// After a control-plane failover some task ended up double-placed
    /// or orphaned (see
    /// [`crate::chaos::ReconcileAudit::double_placed_or_orphaned`]).
    ReconcilePlacement,
}

impl OracleKind {
    /// Stable machine-readable label, used in campaign logs and corpus
    /// headers (`invariant:<kind>`, `zero_loss`, `detect_liveness`,
    /// `routing_parity`, `determinism`, `reconcile_convergence`,
    /// `reconcile_placement`).
    pub fn label(&self) -> String {
        match self {
            Self::Invariant(kind) => format!("invariant:{kind}"),
            Self::ZeroLoss => "zero_loss".to_owned(),
            Self::DetectLiveness => "detect_liveness".to_owned(),
            Self::RoutingParity => "routing_parity".to_owned(),
            Self::Determinism => "determinism".to_owned(),
            Self::ReconcileConvergence => "reconcile_convergence".to_owned(),
            Self::ReconcilePlacement => "reconcile_placement".to_owned(),
        }
    }

    /// Parses a [`OracleKind::label`] back, `None` for anything else.
    pub fn parse(label: &str) -> Option<Self> {
        if let Some(kind) = label.strip_prefix("invariant:") {
            if kind.is_empty() {
                return None;
            }
            return Some(Self::Invariant(kind.to_owned()));
        }
        match label {
            "zero_loss" => Some(Self::ZeroLoss),
            "detect_liveness" => Some(Self::DetectLiveness),
            "routing_parity" => Some(Self::RoutingParity),
            "determinism" => Some(Self::Determinism),
            "reconcile_convergence" => Some(Self::ReconcileConvergence),
            "reconcile_placement" => Some(Self::ReconcilePlacement),
            _ => None,
        }
    }
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Campaign parameters. `sim` is the configuration every generated plan
/// runs under — the campaign forces `check_invariants` on for its own
/// runs, so release-build campaigns actually check.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzConfig {
    /// How many plans to generate and check.
    pub iterations: u32,
    /// Campaign seed; iteration `k` derives its own RNG from
    /// `(seed, k)`, so campaigns are reproducible and iterations are
    /// independent of execution order.
    pub seed: u64,
    /// Grammar atoms per generated plan (each atom may expand to several
    /// events — a flap storm is one atom).
    pub max_atoms: u32,
    /// Data-plane simulation parameters for every run.
    pub sim: SimConfig,
    /// Control-plane recovery-loop parameters for every run.
    pub recovery: RecoveryConfig,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            iterations: 32,
            seed: 42,
            max_atoms: 4,
            // Replay on with a generous budget: 9 attempts x 30 s timeout
            // far exceeds the 60 s quick horizon, so quarantine is
            // structurally impossible and the zero-loss oracle applies to
            // every generated plan.
            sim: SimConfig::quick().with_max_replays(8),
            // Journal on: the grammar draws Nimbus outages, and only a
            // journaled successor owes the detection-liveness and
            // reconciliation guarantees the oracles check.
            recovery: RecoveryConfig {
                journal: true,
                ..RecoveryConfig::default()
            },
        }
    }
}

impl FuzzConfig {
    /// True when no root can exhaust its replay budget within the
    /// horizon — each failed attempt costs at least one tuple timeout, so
    /// `(max_replays + 1) * tuple_timeout_ms > sim_time_ms` makes
    /// quarantine structurally impossible and every generated plan
    /// survivable. Only then is the zero-loss oracle universal.
    pub fn survivable_by_construction(&self) -> bool {
        self.sim.max_replays > 0
            && (f64::from(self.sim.max_replays) + 1.0) * self.sim.tuple_timeout_ms
                > self.sim.sim_time_ms
    }
}

/// One campaign iteration's outcome — a line of the campaign log.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzVerdict {
    /// Iteration index within the campaign.
    pub iteration: u32,
    /// Events in the generated plan (after grammar expansion).
    pub plan_events: usize,
    /// The oracle the plan tripped, `None` for a clean run.
    pub oracle: Option<OracleKind>,
}

impl fmt::Display for FuzzVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.oracle {
            None => write!(
                f,
                "iter {:04} events {} ok",
                self.iteration, self.plan_events
            ),
            Some(oracle) => write!(
                f,
                "iter {:04} events {} VIOLATION {oracle}",
                self.iteration, self.plan_events
            ),
        }
    }
}

/// A violating plan and its shrunk minimal form — one corpus entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReproducer {
    /// The oracle both plans trip.
    pub oracle: OracleKind,
    /// The campaign seed the plan was drawn under.
    pub seed: u64,
    /// The iteration that generated it.
    pub iteration: u32,
    /// The plan as generated. Corpus files store only the shrunk plan;
    /// a reproducer parsed back from text carries the shrunk plan here
    /// too.
    pub original: FaultPlan,
    /// The shrunk minimal reproducer — still trips `oracle`.
    pub plan: FaultPlan,
}

impl FuzzReproducer {
    /// Serializes the reproducer in the corpus format: `# oracle:` /
    /// `# seed:` / `# iteration:` headers followed by the shrunk plan in
    /// [`FaultPlan::to_text`] form. Byte-deterministic.
    pub fn to_text(&self) -> String {
        format!(
            "# oracle: {}\n# seed: {}\n# iteration: {}\n{}",
            self.oracle.label(),
            self.seed,
            self.iteration,
            self.plan.to_text()
        )
    }

    /// Parses the [`FuzzReproducer::to_text`] format. Header lines are
    /// optional except `# oracle:`; unknown `#` comments are ignored
    /// (they are comments to [`FaultPlan::from_text`] too).
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed header or plan line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut oracle = None;
        let mut seed = 0u64;
        let mut iteration = 0u32;
        for line in text.lines() {
            let trimmed = line.trim();
            if let Some(raw) = trimmed.strip_prefix("# oracle:") {
                oracle = Some(
                    OracleKind::parse(raw.trim())
                        .ok_or_else(|| format!("unknown oracle label `{}`", raw.trim()))?,
                );
            } else if let Some(raw) = trimmed.strip_prefix("# seed:") {
                seed = raw
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed `{}`", raw.trim()))?;
            } else if let Some(raw) = trimmed.strip_prefix("# iteration:") {
                iteration = raw
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad iteration `{}`", raw.trim()))?;
            }
        }
        let oracle = oracle.ok_or_else(|| "missing `# oracle:` header".to_owned())?;
        let plan = FaultPlan::from_text(text).map_err(|e| e.to_string())?;
        if plan.is_empty() {
            return Err("reproducer has no fault events".to_owned());
        }
        Ok(Self {
            oracle,
            seed,
            iteration,
            original: plan.clone(),
            plan,
        })
    }
}

/// Everything a campaign produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzOutcome {
    /// The campaign seed.
    pub seed: u64,
    /// Iterations run.
    pub iterations: u32,
    /// One verdict per iteration, in iteration order.
    pub verdicts: Vec<FuzzVerdict>,
    /// One shrunk reproducer per violating iteration, in iteration
    /// order.
    pub reproducers: Vec<FuzzReproducer>,
}

impl FuzzOutcome {
    /// True when no iteration tripped any oracle.
    pub fn is_clean(&self) -> bool {
        self.reproducers.is_empty()
    }

    /// The byte-deterministic campaign log: a header, one line per
    /// iteration, one `shrunk` line per reproducer and a trailing count.
    /// The fixed-seed determinism test pins this string.
    pub fn campaign_log(&self) -> String {
        let mut out = format!(
            "fuzz campaign seed={} iterations={}\n",
            self.seed, self.iterations
        );
        for v in &self.verdicts {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for r in &self.reproducers {
            out.push_str(&format!(
                "shrunk iter {:04} {} {} -> {} events\n",
                r.iteration,
                r.oracle.label(),
                r.original.events().len(),
                r.plan.events().len()
            ));
        }
        out.push_str(&format!("violations={}\n", self.reproducers.len()));
        out
    }
}

// ---- oracle evaluation --------------------------------------------------

/// Runs `plan` through both planes and returns the first oracle it
/// trips, `None` for a clean (or inapplicable — e.g. unplaceable) run.
/// Evaluation order: accounting invariants, zero loss (only when
/// [`FuzzConfig::survivable_by_construction`]), detection liveness,
/// routing parity, determinism. The first run short-circuits invariant
/// violations, so shrinking an invariant reproducer costs one simulation
/// per candidate.
pub fn check_fault_plan(
    cluster: &Arc<Cluster>,
    topology: &Topology,
    scheduler: &(dyn Scheduler + '_),
    cfg: &FuzzConfig,
    plan: &FaultPlan,
) -> Option<OracleKind> {
    let sim = cfg.sim.clone().with_check_invariants(true);
    let out = match run_fault_plan_with(cluster, topology, plan, &sim, &cfg.recovery, scheduler) {
        Ok(out) => out,
        // A plan the harness rejects (unknown name, unplaceable
        // topology) is not a violation — the campaign records it clean.
        Err(_) => return None,
    };
    if let Some(v) = out.violations.first() {
        return Some(OracleKind::Invariant(v.kind().to_owned()));
    }
    if cfg.survivable_by_construction() && out.report.zero_loss_ratio() != 1.0 {
        return Some(OracleKind::ZeroLoss);
    }
    if has_undetected_outage(cluster, plan, &cfg.recovery, sim.sim_time_ms, &out.events) {
        return Some(OracleKind::DetectLiveness);
    }
    if let Some(audit) = &out.reconciliation {
        if !audit.converged {
            return Some(OracleKind::ReconcileConvergence);
        }
        if audit.double_placed_or_orphaned {
            return Some(OracleKind::ReconcilePlacement);
        }
    }
    let flipped = sim
        .clone()
        .with_incremental_routing(!sim.incremental_routing);
    match run_fault_plan_with(cluster, topology, plan, &flipped, &cfg.recovery, scheduler) {
        Ok(alt) => {
            if alt.report != out.report || alt.report.to_json() != out.report.to_json() {
                return Some(OracleKind::RoutingParity);
            }
        }
        // The first run started, an identical one (routing flag aside)
        // did not: that is a determinism bug, not a parity one.
        Err(_) => return Some(OracleKind::Determinism),
    }
    match run_fault_plan_with(cluster, topology, plan, &sim, &cfg.recovery, scheduler) {
        Ok(again) => {
            if again.report.to_json() != out.report.to_json() || again.events != out.events {
                return Some(OracleKind::Determinism);
            }
        }
        Err(_) => return Some(OracleKind::Determinism),
    }
    None
}

/// Detection-liveness predicate: true when some node has a single silence
/// window so long that the control plane must have declared it dead, yet
/// no [`RecoveryEvent::NodeDeclaredDead`] names it. A window qualifies
/// only if it starts after `t = 0` (so the manager has seen the node
/// heartbeat), contains a **Nimbus-free** span of at least
/// [`RecoveryConfig::detection_slack_ms`] — the miss window plus
/// tick-alignment slack, long enough for either the incumbent or a
/// freshly reassumed successor (whose roster heartbeats are seeded on
/// replay) to notice the silence — and that span ends before the
/// horizon. When the plan crashes Nimbus and journaling is **off**, the
/// check is skipped entirely: a cold successor is structurally blind to
/// nodes that fell silent before the failover, which is exactly the
/// gap the journal exists to close. Deliberately conservative: merged
/// adjacent windows that jointly exceed the slack are not flagged.
fn has_undetected_outage(
    cluster: &Cluster,
    plan: &FaultPlan,
    recovery: &RecoveryConfig,
    horizon_ms: f64,
    events: &[RecoveryEvent],
) -> bool {
    let nimbus = plan.nimbus_down_windows();
    if !nimbus.is_empty() && !recovery.journal {
        return false;
    }
    let slack = recovery.detection_slack_ms();
    let node_windows = plan.node_down_windows();
    let rack_windows = plan.rack_partition_windows();
    for node in cluster.nodes() {
        let name = node.id().as_str();
        let mut windows: Vec<(f64, f64)> = node_windows.get(name).cloned().unwrap_or_default();
        if let Some(rw) = rack_windows.get(node.rack().as_str()) {
            windows.extend(rw.iter().copied());
        }
        let must_detect = windows.iter().any(|&(at, until)| {
            at > 0.0
                && nimbus_free_span(&nimbus, at, until, slack)
                    .is_some_and(|s| s + slack <= horizon_ms)
        });
        if must_detect
            && !events
                .iter()
                .any(|e| matches!(e, RecoveryEvent::NodeDeclaredDead { node, .. } if node == name))
        {
            return true;
        }
    }
    false
}

/// Earliest start `s` of a span `[s, s + slack]` that fits inside the
/// silence window `[at, until]` and overlaps no Nimbus outage. Candidate
/// starts are the window start and each outage's end — the two instants
/// a detection clock (re)starts. `None` when every candidate span runs
/// into an outage or past the window.
fn nimbus_free_span(nimbus: &[(f64, f64)], at: f64, until: f64, slack: f64) -> Option<f64> {
    let mut candidates = vec![at];
    candidates.extend(nimbus.iter().map(|&(_, end)| end).filter(|&e| e > at));
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("fault times are finite"));
    candidates
        .into_iter()
        .filter(|&s| s + slack <= until)
        .find(|&s| !nimbus.iter().any(|&(ns, ne)| ns < s + slack && ne > s))
}

// ---- plan generation ----------------------------------------------------

/// Samples one structured plan from the fault grammar: 1..=`max_atoms`
/// atoms, each a crash/recover pair, a lasting crash, a flap storm, a
/// correlated crash burst, a rack partition, a link degradation, a
/// background-traffic burst train (a sequence of short degradation
/// windows, the shape a periodic bulk transfer leaves on the fair
/// network plane), a Nimbus outage or a control-channel loss window,
/// with every instant and duration on the [`QUANTUM_MS`] grid inside
/// the first ~80% of the horizon. Pure in `(rng state, cluster, cfg)`.
fn generate_plan(rng: &mut StdRng, cluster: &Cluster, cfg: &FuzzConfig) -> FaultPlan {
    let nodes: Vec<&str> = cluster.nodes().iter().map(|n| n.id().as_str()).collect();
    let racks: Vec<&str> = cluster.racks().iter().map(|r| r.as_str()).collect();
    let horizon = cfg.sim.sim_time_ms;
    let max_slot = ((horizon * 0.8) / QUANTUM_MS).floor().max(2.0) as u64;
    let grid = |rng: &mut StdRng| QUANTUM_MS * rng.gen_range(1..=max_slot) as f64;

    let atoms = rng.gen_range(1..=cfg.max_atoms.max(1));
    let mut plan = FaultPlan::new();
    for _ in 0..atoms {
        let at = grid(rng);
        match rng.gen_range(0u8..9) {
            0 => {
                let node = nodes[rng.gen_range(0..nodes.len())];
                let outage = QUANTUM_MS * rng.gen_range(1u64..=20) as f64;
                plan = plan.crash_node(at, node).recover_node(at + outage, node);
            }
            1 => {
                let node = nodes[rng.gen_range(0..nodes.len())];
                plan = plan.crash_node(at, node);
            }
            2 => {
                let node = nodes[rng.gen_range(0..nodes.len())];
                let flaps = rng.gen_range(2u32..=4);
                let down = QUANTUM_MS * rng.gen_range(1u64..=6) as f64;
                let up = QUANTUM_MS * rng.gen_range(1u64..=6) as f64;
                plan = plan.flap_storm(at, node, flaps, down, up);
            }
            3 => {
                let k = rng.gen_range(2..=3.min(nodes.len())).max(1);
                let start = rng.gen_range(0..nodes.len());
                let burst: Vec<&str> = (0..k).map(|j| nodes[(start + j) % nodes.len()]).collect();
                let outage = QUANTUM_MS * rng.gen_range(1u64..=20) as f64;
                plan = plan.crash_burst(at, &burst, outage);
            }
            4 => {
                let rack = racks[rng.gen_range(0..racks.len())];
                let until = at + QUANTUM_MS * rng.gen_range(1u64..=20) as f64;
                plan = plan.partition_rack(at, until, rack);
            }
            5 => {
                let until = at + QUANTUM_MS * rng.gen_range(1u64..=10) as f64;
                let extra = QUANTUM_MS * rng.gen_range(1u64..=4) as f64;
                plan = plan.degrade_links(at, until, extra);
            }
            6 => {
                // Background-traffic burst train: 2..=4 short degradation
                // windows with gaps, the on/off pattern a periodic bulk
                // transfer imposes (under the fair network plane each
                // window squeezes capacity rather than padding latency).
                let bursts = rng.gen_range(2u64..=4);
                let len = QUANTUM_MS * rng.gen_range(1u64..=4) as f64;
                let gap = QUANTUM_MS * rng.gen_range(1u64..=2) as f64;
                let extra = QUANTUM_MS * rng.gen_range(1u64..=4) as f64;
                let mut t = at;
                for _ in 0..bursts {
                    plan = plan.degrade_links(t, t + len, extra);
                    t += len + gap;
                }
            }
            7 => {
                // Nimbus outage: the control plane goes dark, then a
                // successor reassumes and reconciles.
                let down = QUANTUM_MS * rng.gen_range(2u64..=20) as f64;
                plan = plan.nimbus_crash(at, down);
            }
            _ => {
                // Control-channel loss: Nimbus keeps ticking but every
                // node looks silent for the window.
                let until = at + QUANTUM_MS * rng.gen_range(2u64..=12) as f64;
                plan = plan.lose_control_channel(at, until);
            }
        }
    }
    plan
}

/// The RNG seed of campaign iteration `k` — a pure splitmix-style mix of
/// the campaign seed, so iterations are decorrelated but reproducible.
fn iteration_seed(seed: u64, k: u32) -> u64 {
    seed ^ (u64::from(k) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

// ---- shrinking ----------------------------------------------------------

/// Shrinks a violating plan to a (locally) minimal reproducer tripping
/// the **same** oracle: delta-debugging passes drop event chunks, then
/// single events, then tighten partition/degradation windows toward one
/// [`QUANTUM_MS`]. Deterministic; bounded by an internal check budget.
///
/// # Panics
///
/// Panics if `plan` does not trip `oracle` in the first place.
pub fn shrink_fault_plan(
    cluster: &Arc<Cluster>,
    topology: &Topology,
    scheduler: &(dyn Scheduler + '_),
    cfg: &FuzzConfig,
    plan: &FaultPlan,
    oracle: &OracleKind,
) -> FaultPlan {
    let mut budget = SHRINK_CHECK_BUDGET;
    let mut still_violates = |events: &[FaultEvent]| -> bool {
        if budget == 0 {
            return false;
        }
        budget -= 1;
        let candidate = FaultPlan::from_event_vec(events.to_vec());
        check_fault_plan(cluster, topology, scheduler, cfg, &candidate).as_ref() == Some(oracle)
    };
    assert!(
        still_violates(plan.events()),
        "shrink_fault_plan called with a plan that does not trip {oracle}"
    );

    let mut events = plan.events().to_vec();

    // Pass 1: ddmin-style chunk removal — halves, quarters, ... down to
    // single events, restarting from coarse chunks after any success.
    let mut n = 2usize;
    while events.len() >= 2 {
        let chunk = events.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < events.len() {
            let end = (start + chunk).min(events.len());
            let mut candidate = Vec::with_capacity(events.len() - (end - start));
            candidate.extend_from_slice(&events[..start]);
            candidate.extend_from_slice(&events[end..]);
            if !candidate.is_empty() && still_violates(&candidate) {
                events = candidate;
                n = 2;
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= events.len() {
                break;
            }
            n = (n * 2).min(events.len());
        }
    }

    // Pass 2: tighten windowed events — halve each window toward one
    // quantum, to a fixpoint.
    loop {
        let mut improved = false;
        for i in 0..events.len() {
            let tightened = match &events[i] {
                FaultEvent::RackPartition {
                    at_ms,
                    until_ms,
                    rack,
                } => halve_window(*at_ms, *until_ms).map(|until| FaultEvent::RackPartition {
                    at_ms: *at_ms,
                    until_ms: until,
                    rack: rack.clone(),
                }),
                FaultEvent::LinkDegrade {
                    at_ms,
                    until_ms,
                    extra_latency_ms,
                } => halve_window(*at_ms, *until_ms).map(|until| FaultEvent::LinkDegrade {
                    at_ms: *at_ms,
                    until_ms: until,
                    extra_latency_ms: *extra_latency_ms,
                }),
                FaultEvent::NimbusCrash { at_ms, down_ms } => {
                    halve_window(*at_ms, *at_ms + *down_ms).map(|until| FaultEvent::NimbusCrash {
                        at_ms: *at_ms,
                        down_ms: until - *at_ms,
                    })
                }
                FaultEvent::ControlLoss { at_ms, until_ms } => {
                    halve_window(*at_ms, *until_ms).map(|until| FaultEvent::ControlLoss {
                        at_ms: *at_ms,
                        until_ms: until,
                    })
                }
                _ => None,
            };
            if let Some(ev) = tightened {
                let mut candidate = events.clone();
                candidate[i] = ev;
                if still_violates(&candidate) {
                    events = candidate;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    FaultPlan::from_event_vec(events)
}

/// Half the window, snapped down to the [`QUANTUM_MS`] grid, `None` when
/// it is already at the one-quantum floor.
fn halve_window(at_ms: f64, until_ms: f64) -> Option<f64> {
    let len = until_ms - at_ms;
    if len <= QUANTUM_MS {
        return None;
    }
    let half = ((len / 2.0) / QUANTUM_MS).floor().max(1.0) * QUANTUM_MS;
    if half >= len {
        return None;
    }
    Some(at_ms + half)
}

// ---- the campaign -------------------------------------------------------

/// Runs a fuzz campaign: generates `cfg.iterations` plans, checks each
/// against the oracle set on a pool of `workers` threads (the
/// [`crate::sweep`] no-stealing pool — iteration `k` always lands in
/// slot `k`, so the outcome is byte-identical for every worker count),
/// then serially shrinks every violating plan to a minimal reproducer.
///
/// # Panics
///
/// Panics if `cfg.iterations == 0`.
pub fn run_fuzz_campaign(
    cluster: &Arc<Cluster>,
    topology: &Topology,
    scheduler: &(dyn Scheduler + Sync),
    cfg: &FuzzConfig,
    workers: usize,
) -> FuzzOutcome {
    assert!(cfg.iterations > 0, "a fuzz campaign needs iterations");
    let total = cfg.iterations as usize;
    let workers = workers.clamp(1, total);

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, (FaultPlan, Option<OracleKind>))>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= total {
                    break;
                }
                let mut rng = StdRng::seed_from_u64(iteration_seed(cfg.seed, k as u32));
                let plan = generate_plan(&mut rng, cluster, cfg);
                let oracle = check_fault_plan(cluster, topology, scheduler, cfg, &plan);
                if tx.send((k, (plan, oracle))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<(FaultPlan, Option<OracleKind>)>> = vec![None; total];
    for (k, result) in rx {
        debug_assert!(slots[k].is_none(), "iteration {k} reported twice");
        slots[k] = Some(result);
    }

    let mut verdicts = Vec::with_capacity(total);
    let mut reproducers = Vec::new();
    for (k, slot) in slots.into_iter().enumerate() {
        let (plan, oracle) = slot.expect("every iteration completes exactly once");
        verdicts.push(FuzzVerdict {
            iteration: k as u32,
            plan_events: plan.events().len(),
            oracle: oracle.clone(),
        });
        if let Some(oracle) = oracle {
            let shrunk = shrink_fault_plan(cluster, topology, scheduler, cfg, &plan, &oracle);
            reproducers.push(FuzzReproducer {
                oracle,
                seed: cfg.seed,
                iteration: k as u32,
                original: plan,
                plan: shrunk,
            });
        }
    }

    FuzzOutcome {
        seed: cfg.seed,
        iterations: cfg.iterations,
        verdicts,
        reproducers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_core::RStormScheduler;
    use rstorm_topology::{ExecutionProfile, TopologyBuilder};

    fn cluster() -> Arc<Cluster> {
        Arc::new(
            ClusterBuilder::new()
                .homogeneous_racks(2, 2, ResourceCapacity::emulab_node(), 4)
                .build()
                .unwrap(),
        )
    }

    /// A topology whose two components cannot colocate (1.4 GB each on
    /// 2 GB nodes), so the sink runs on a different node than the spout
    /// and killing either disrupts the tuple path.
    fn split_topology() -> Topology {
        let mut b = TopologyBuilder::new("fuzz-t");
        b.set_spout("src", 1)
            .set_profile(ExecutionProfile::network_bound(100))
            .set_cpu_load(20.0)
            .set_memory_load(1_400.0);
        b.set_bolt("sink", 1)
            .shuffle_grouping("src")
            .set_profile(ExecutionProfile::network_bound(100).into_sink())
            .set_cpu_load(20.0)
            .set_memory_load(1_400.0);
        b.build().unwrap()
    }

    /// A short clean-campaign configuration: 30 s horizon, replay budget
    /// far past exhaustion, so every oracle applies.
    fn clean_cfg(iterations: u32) -> FuzzConfig {
        FuzzConfig {
            iterations,
            seed: 42,
            max_atoms: 3,
            sim: SimConfig::quick()
                .with_sim_time_ms(30_000.0)
                .with_max_replays(8),
            recovery: RecoveryConfig {
                journal: true,
                ..RecoveryConfig::default()
            },
        }
    }

    /// The planted-bug configuration: a tight replay budget and short
    /// timeout make quarantine reachable within the horizon, and the
    /// planted hook breaks the drain invariant on the first quarantine.
    fn planted_cfg(iterations: u32) -> FuzzConfig {
        let mut sim = SimConfig::quick()
            .with_sim_time_ms(30_000.0)
            .with_max_replays(1)
            .with_planted_quarantine_bug(true);
        sim.tuple_timeout_ms = 3_000.0;
        FuzzConfig {
            iterations,
            seed: 42,
            max_atoms: 3,
            sim,
            recovery: RecoveryConfig {
                journal: true,
                ..RecoveryConfig::default()
            },
        }
    }

    #[test]
    fn oracle_labels_round_trip() {
        let kinds = [
            OracleKind::Invariant("drain_imbalance".into()),
            OracleKind::ZeroLoss,
            OracleKind::DetectLiveness,
            OracleKind::RoutingParity,
            OracleKind::Determinism,
            OracleKind::ReconcileConvergence,
            OracleKind::ReconcilePlacement,
        ];
        for k in kinds {
            assert_eq!(OracleKind::parse(&k.label()), Some(k.clone()), "{k}");
        }
        assert_eq!(OracleKind::parse("nonsense"), None);
        assert_eq!(OracleKind::parse("invariant:"), None);
    }

    #[test]
    fn generated_plans_are_deterministic_and_on_grid() {
        let cluster = cluster();
        let cfg = clean_cfg(4);
        let mut a = StdRng::seed_from_u64(iteration_seed(cfg.seed, 0));
        let mut b = StdRng::seed_from_u64(iteration_seed(cfg.seed, 0));
        let p1 = generate_plan(&mut a, &cluster, &cfg);
        let p2 = generate_plan(&mut b, &cluster, &cfg);
        assert_eq!(p1, p2, "same (seed, k) => same plan");
        assert!(!p1.is_empty());
        for ev in p1.events() {
            let at = match ev {
                FaultEvent::NodeCrash { at_ms, .. }
                | FaultEvent::NodeRecover { at_ms, .. }
                | FaultEvent::LinkDegrade { at_ms, .. }
                | FaultEvent::RackPartition { at_ms, .. }
                | FaultEvent::NimbusCrash { at_ms, .. }
                | FaultEvent::ControlLoss { at_ms, .. } => *at_ms,
            };
            assert_eq!(at % QUANTUM_MS, 0.0, "{ev:?} off the time grid");
        }
        let mut c = StdRng::seed_from_u64(iteration_seed(cfg.seed, 1));
        assert_ne!(
            generate_plan(&mut c, &cluster, &cfg),
            p1,
            "different iterations draw different plans"
        );
    }

    #[test]
    fn grammar_covers_background_traffic_burst_trains() {
        let cluster = cluster();
        let cfg = clean_cfg(1);
        // Only the burst-train atom can put more degradation windows in a
        // plan than it has atoms, so this signature pins its presence.
        let trains = (0..64).any(|k| {
            let mut rng = StdRng::seed_from_u64(iteration_seed(cfg.seed, k));
            let plan = generate_plan(&mut rng, &cluster, &cfg);
            let degrades = plan
                .events()
                .iter()
                .filter(|e| matches!(e, FaultEvent::LinkDegrade { .. }))
                .count();
            degrades > cfg.max_atoms as usize
        });
        assert!(trains, "64 draws never produced a burst train");
    }

    #[test]
    fn clean_engine_yields_clean_deterministic_campaign() {
        let cluster = cluster();
        let t = split_topology();
        let scheduler = RStormScheduler::new();
        let cfg = clean_cfg(6);
        let a = run_fuzz_campaign(&cluster, &t, &scheduler, &cfg, 2);
        assert!(
            a.is_clean(),
            "healthy engine must trip no oracle:\n{}",
            a.campaign_log()
        );
        assert_eq!(a.verdicts.len(), 6);
        let b = run_fuzz_campaign(&cluster, &t, &scheduler, &cfg, 4);
        assert_eq!(a, b, "same seed => same campaign, any worker count");
        assert_eq!(a.campaign_log(), b.campaign_log());
    }

    #[test]
    fn planted_bug_is_found_and_shrunk_small() {
        let cluster = cluster();
        let t = split_topology();
        let scheduler = RStormScheduler::new();
        let cfg = planted_cfg(12);
        let out = run_fuzz_campaign(&cluster, &t, &scheduler, &cfg, 2);
        let repro = out
            .reproducers
            .iter()
            .find(|r| r.oracle == OracleKind::Invariant("drain_imbalance".into()))
            .unwrap_or_else(|| {
                panic!(
                    "the planted quarantine bug must be found:\n{}",
                    out.campaign_log()
                )
            });
        assert!(
            repro.plan.events().len() <= 6,
            "shrunk to {} events, want <= 6:\n{}",
            repro.plan.events().len(),
            repro.plan.to_text()
        );
        assert!(repro.plan.events().len() <= repro.original.events().len());
        // Both the parent and the shrunk plan trip the same oracle.
        assert_eq!(
            check_fault_plan(&cluster, &t, &scheduler, &cfg, &repro.original).as_ref(),
            Some(&repro.oracle)
        );
        assert_eq!(
            check_fault_plan(&cluster, &t, &scheduler, &cfg, &repro.plan).as_ref(),
            Some(&repro.oracle)
        );
        // With the hook off the same minimal plan is clean again.
        let mut honest = cfg.clone();
        honest.sim = honest.sim.with_planted_quarantine_bug(false);
        assert_eq!(
            check_fault_plan(&cluster, &t, &scheduler, &honest, &repro.plan),
            None,
            "the reproducer must implicate the planted bug, not the engine"
        );
    }

    #[test]
    fn reproducer_text_round_trips() {
        let repro = FuzzReproducer {
            oracle: OracleKind::Invariant("drain_imbalance".into()),
            seed: 7,
            iteration: 3,
            original: FaultPlan::new().crash_node(1_000.0, "n0"),
            plan: FaultPlan::new().crash_node(1_000.0, "n0"),
        };
        let text = repro.to_text();
        let parsed = FuzzReproducer::from_text(&text).unwrap();
        assert_eq!(parsed.oracle, repro.oracle);
        assert_eq!(parsed.seed, 7);
        assert_eq!(parsed.iteration, 3);
        assert_eq!(parsed.plan, repro.plan);
        assert_eq!(parsed.to_text(), text, "serialization is a fixpoint");

        assert!(
            FuzzReproducer::from_text("crash 10 n0\n").is_err(),
            "no oracle header"
        );
        assert!(
            FuzzReproducer::from_text("# oracle: zero_loss\n").is_err(),
            "no events"
        );
        assert!(FuzzReproducer::from_text("# oracle: gibberish\ncrash 10 n0\n").is_err());
    }

    #[test]
    fn window_halving_respects_the_grid() {
        assert_eq!(halve_window(1_000.0, 1_500.0), None, "already minimal");
        assert_eq!(halve_window(1_000.0, 5_000.0), Some(3_000.0));
        assert_eq!(halve_window(0.0, 1_500.0), Some(500.0));
    }

    #[test]
    fn detect_liveness_oracle_flags_missing_declarations() {
        let cluster = cluster();
        let victim = cluster.nodes()[0].id().as_str().to_owned();
        let recovery = RecoveryConfig::default();
        // 20 s of silence >> the (3 + 2) x 1 s slack; an empty event log
        // must be flagged, a log declaring the node dead must not.
        let plan = FaultPlan::new()
            .crash_node(5_000.0, &victim)
            .recover_node(25_000.0, &victim);
        assert!(has_undetected_outage(
            &cluster,
            &plan,
            &recovery,
            30_000.0,
            &[]
        ));
        let declared = vec![RecoveryEvent::NodeDeclaredDead {
            node: victim.clone(),
            at_ms: 9_000.0,
            time_to_detect_ms: 4_000.0,
            displaced: vec![],
        }];
        assert!(!has_undetected_outage(
            &cluster, &plan, &recovery, 30_000.0, &declared
        ));
        // A sub-slack flap must not demand detection.
        let flap = FaultPlan::new()
            .crash_node(5_000.0, &victim)
            .recover_node(7_000.0, &victim);
        assert!(!has_undetected_outage(
            &cluster,
            &flap,
            &recovery,
            30_000.0,
            &[]
        ));
    }

    #[test]
    fn grammar_covers_control_plane_outages() {
        let cluster = cluster();
        let cfg = clean_cfg(1);
        let mut nimbus = false;
        let mut loss = false;
        for k in 0..64 {
            let mut rng = StdRng::seed_from_u64(iteration_seed(cfg.seed, k));
            let plan = generate_plan(&mut rng, &cluster, &cfg);
            nimbus |= !plan.nimbus_down_windows().is_empty();
            loss |= !plan.control_loss_windows().is_empty();
            if nimbus && loss {
                return;
            }
        }
        panic!("64 draws never produced both control-plane atoms (nimbus={nimbus}, loss={loss})");
    }

    #[test]
    fn detect_liveness_accounts_for_nimbus_outages() {
        let cluster = cluster();
        let victim = cluster.nodes()[0].id().as_str().to_owned();
        let journaled = RecoveryConfig {
            journal: true,
            ..RecoveryConfig::default()
        };
        // The outage covers the whole silence window: no detector —
        // incumbent or successor — ever gets a full slack span, so the
        // missing declaration is excused.
        let covered = FaultPlan::new()
            .crash_node(5_000.0, &victim)
            .recover_node(12_000.0, &victim)
            .nimbus_crash(4_000.0, 10_000.0);
        assert!(!has_undetected_outage(
            &cluster,
            &covered,
            &journaled,
            30_000.0,
            &[]
        ));
        // The outage ends mid-window with a slack-length remainder: the
        // reassumed successor owes a declaration.
        let split = FaultPlan::new()
            .crash_node(5_000.0, &victim)
            .recover_node(25_000.0, &victim)
            .nimbus_crash(4_000.0, 8_000.0);
        assert!(has_undetected_outage(
            &cluster,
            &split,
            &journaled,
            30_000.0,
            &[]
        ));
        // A cold (journal-less) failover owes nothing: it is blind to
        // nodes that fell silent before it took over.
        let cold = RecoveryConfig::default();
        assert!(!has_undetected_outage(
            &cluster,
            &split,
            &cold,
            30_000.0,
            &[]
        ));
        // Without Nimbus faults the journal flag changes nothing.
        let plain = FaultPlan::new()
            .crash_node(5_000.0, &victim)
            .recover_node(25_000.0, &victim);
        assert!(has_undetected_outage(
            &cluster,
            &plain,
            &cold,
            30_000.0,
            &[]
        ));
    }

    #[test]
    fn control_outage_plans_run_clean_and_carry_an_audit() {
        let cluster = cluster();
        let t = split_topology();
        let scheduler = RStormScheduler::new();
        let cfg = clean_cfg(1);
        // Crash the spout's host during a Nimbus outage: only the
        // journaled successor's seeded roster lets it detect the silence.
        let mut state = rstorm_core::GlobalState::new(&cluster);
        let host = scheduler
            .schedule(&t, &cluster, &mut state)
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .1
            .node
            .as_str()
            .to_owned();
        let plan = FaultPlan::new()
            .crash_node(8_000.0, &host)
            .recover_node(20_000.0, &host)
            .nimbus_crash(6_000.0, 5_000.0);
        assert_eq!(
            check_fault_plan(&cluster, &t, &scheduler, &cfg, &plan),
            None,
            "a journaled failover over a survivable plan must be clean"
        );
        let sim = cfg.sim.clone().with_check_invariants(true);
        let out =
            run_fault_plan_with(&cluster, &t, &plan, &sim, &cfg.recovery, &scheduler).unwrap();
        let audit = out.reconciliation.expect("control faults produce an audit");
        assert!(
            audit.time_to_reassume_ms >= 5_000.0,
            "reassumption happens after the outage, got {}",
            audit.time_to_reassume_ms
        );
        assert!(audit.converged);
        assert!(!audit.double_placed_or_orphaned);
        // A fault-free plan carries no audit.
        let plain = FaultPlan::new()
            .crash_node(8_000.0, &host)
            .recover_node(20_000.0, &host);
        let out =
            run_fault_plan_with(&cluster, &t, &plain, &sim, &cfg.recovery, &scheduler).unwrap();
        assert!(out.reconciliation.is_none());
    }
}
