//! The original string-keyed simulation engine, kept as a semantic
//! oracle.
//!
//! [`ReferenceSimulation`] interprets groupings per emission, keeps
//! in-flight tuple trees in a `HashMap`, shares each node's CPU through
//! the hash-keyed [`CpuServer`] and records statistics through the
//! string-keyed `StatisticServer` — exactly the straightforward
//! implementation the fast engine in [`crate::sim`] optimizes. It mirrors
//! the `ReferenceRStormScheduler` pattern: parity tests assert that
//! [`crate::Simulation`] produces bit-for-bit identical [`SimReport`]s,
//! so every fast-path shortcut stays pinned to these semantics.

use crate::build::{relation_of, ClusterIndex, SimBuild};
use crate::config::SimConfig;
use crate::event::EventQueue;
use crate::report::{SimDebugStats, SimReport, SimTotals};
use crate::servers::{legacy_link_fabric, CpuServer, LinkServer};
use crate::sim::{Batch, LatencyAccumulator, TaskRt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rstorm_cluster::{Cluster, PlacementRelation};
use rstorm_core::Assignment;
use rstorm_metrics::{CpuUtilizationTracker, StatisticServer};
use rstorm_topology::{StreamGrouping, Topology};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// The reference engine's event payload (the fast engine uses a packed
/// representation instead; see `crate::sim`).
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A spout attempts to emit its next root batch.
    TrySpout(usize),
    /// A task finishes processing the batch at the head of its queue.
    WorkDone(usize, Batch),
    /// A batch arrives at a downstream task.
    Deliver(usize, Batch),
    /// A tuple tree hit `message_timeout_ms` without completing.
    RootTimeout(u64),
}

#[derive(Debug)]
struct RootState {
    pending: u32,
    born: f64,
    deadline: f64,
    spout: usize,
    failed: bool,
}

/// The original simulation engine (see the module docs). Same public
/// surface as [`crate::Simulation`]; use it to cross-check the fast
/// engine or to benchmark against it.
#[derive(Debug)]
pub struct ReferenceSimulation {
    cluster: Arc<Cluster>,
    config: SimConfig,
    index: ClusterIndex,
    build: SimBuild,
    stats: StatisticServer,
}

impl ReferenceSimulation {
    /// Creates an empty simulation over `cluster`.
    pub fn new(cluster: impl Into<Arc<Cluster>>, config: SimConfig) -> Self {
        let cluster = cluster.into();
        let index = ClusterIndex::new(&cluster);
        let build = SimBuild::new(cluster.nodes().len());
        let stats = StatisticServer::new(config.window_ms);
        Self {
            cluster,
            config,
            index,
            build,
            stats,
        }
    }

    /// Adds a scheduled topology to the simulation.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is incomplete or references nodes not in
    /// the cluster.
    pub fn add_topology(&mut self, topology: &Topology, assignment: &Assignment) {
        assert_eq!(
            topology.id().as_str(),
            assignment.topology().as_str(),
            "assignment belongs to a different topology"
        );
        for sink in topology.sinks() {
            self.stats
                .declare_sink(topology.id().as_str(), sink.id().as_str());
        }
        self.build
            .append_topology(&self.index, self.cluster.costs(), topology, assignment);
    }

    /// Runs the simulation to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics if no topology was added.
    pub fn run(self) -> SimReport {
        assert!(
            !self.build.specs.is_empty(),
            "add at least one topology before running"
        );
        RefEngine::new(self).run()
    }
}

struct RefEngine {
    cluster: Arc<Cluster>,
    config: SimConfig,
    build: SimBuild,
    stats: StatisticServer,
    node_names: Vec<String>,

    queue: EventQueue<Ev>,
    cpus: Vec<CpuServer>,
    egress: Vec<LinkServer>,
    ingress: Vec<LinkServer>,
    uplink: LinkServer,
    tasks: Vec<TaskRt>,
    roots: HashMap<u64, RootState>,
    next_root: u64,
    rng: StdRng,
    totals: SimTotals,
    latency: LatencyAccumulator,
    events: u64,
}

impl std::fmt::Debug for RefEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefEngine")
            .field("tasks", &self.tasks.len())
            .field("now", &self.queue.now())
            .finish_non_exhaustive()
    }
}

impl RefEngine {
    fn new(sim: ReferenceSimulation) -> Self {
        let ReferenceSimulation {
            cluster,
            config,
            index,
            build,
            stats,
        } = sim;

        // Borrow the cost matrix; the reference engine re-reads it per
        // transfer through the shared `Arc` instead of deep-copying it.
        let costs = cluster.costs();
        let cpus = index
            .cores
            .iter()
            .zip(&build.node_mem_demand)
            .zip(&index.memory_mb)
            .map(|((&cores, &demand), &capacity)| {
                let thrash = if demand > capacity && config.oom_thrash_factor < 1.0 {
                    // Over-committed memory: the node pages/crash-loops.
                    config.oom_thrash_factor
                } else {
                    1.0
                };
                CpuServer::new(cores, thrash)
            })
            .collect();
        let (egress, ingress, uplink) = legacy_link_fabric(
            index.cores.len(),
            costs.node_bandwidth_mbps,
            costs.inter_rack_bandwidth_mbps,
        );

        let tasks = build
            .specs
            .iter()
            .map(|s| TaskRt {
                credits: if s.is_spout {
                    s.max_spout_pending.unwrap_or(config.max_pending)
                } else {
                    0
                },
                ..TaskRt::default()
            })
            .collect();

        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            cluster,
            config,
            build,
            stats,
            node_names: index.node_names,
            queue: EventQueue::new(),
            cpus,
            egress,
            ingress,
            uplink,
            tasks,
            roots: HashMap::new(),
            next_root: 0,
            rng,
            totals: SimTotals::default(),
            latency: LatencyAccumulator::default(),
            events: 0,
        }
    }

    fn run(mut self) -> SimReport {
        for i in 0..self.build.specs.len() {
            if self.build.specs[i].is_spout {
                self.queue.schedule(0.0, Ev::TrySpout(i));
            }
        }

        while let Some((t, ev)) = self.queue.pop() {
            if t > self.config.sim_time_ms {
                break;
            }
            self.events += 1;
            match ev {
                Ev::TrySpout(i) => self.try_spout(i),
                Ev::WorkDone(i, batch) => self.work_done(i, batch),
                Ev::Deliver(i, batch) => self.deliver(i, batch),
                Ev::RootTimeout(root) => self.root_timeout(root),
            }
        }

        self.report()
    }

    // ---- spout production --------------------------------------------

    fn try_spout(&mut self, i: usize) {
        if self.tasks[i].busy {
            return; // WorkDone will retry.
        }
        if self.tasks[i].credits == 0 {
            self.tasks[i].waiting_for_credit = true;
            return;
        }
        let now = self.queue.now();
        // A rate-limited source paces its emissions regardless of credit
        // availability (the stream arrives at its own rate).
        if let Some(rate) = self.build.specs[i].max_rate_tuples_per_sec {
            if now + 1e-9 < self.tasks[i].next_emit_ms {
                let at = self.tasks[i].next_emit_ms;
                self.queue.schedule(at, Ev::TrySpout(i));
                return;
            }
            let interval = f64::from(self.config.batch_tuples) / rate * 1000.0;
            let base = self.tasks[i].next_emit_ms.max(now);
            self.tasks[i].next_emit_ms = base + interval;
        }
        self.tasks[i].credits -= 1;
        let root = self.next_root;
        self.next_root += 1;
        let deadline = now + self.config.tuple_timeout_ms;
        self.roots.insert(
            root,
            RootState {
                pending: 1,
                born: now,
                deadline,
                spout: i,
                failed: false,
            },
        );
        self.queue.schedule(deadline, Ev::RootTimeout(root));

        let batch = Batch {
            root,
            tuples: self.config.batch_tuples,
        };
        let work = f64::from(batch.tuples) * self.build.specs[i].work_ms_per_tuple;
        let done = self.cpus[self.build.specs[i].node_idx].serve(now, i, work);
        self.tasks[i].busy = true;
        self.queue.schedule(done, Ev::WorkDone(i, batch));
    }

    // ---- work completion ---------------------------------------------

    fn work_done(&mut self, i: usize, batch: Batch) {
        let now = self.queue.now();
        let spec_is_spout = self.build.specs[i].is_spout;
        let spec_is_sink = self.build.specs[i].is_sink;

        if spec_is_spout {
            self.totals.spout_batches += 1;
            self.stats.record_emitted(
                &self.build.specs[i].topology,
                &self.build.specs[i].component,
                now,
                u64::from(batch.tuples),
            );
        } else {
            self.totals.tuples_processed += u64::from(batch.tuples);
        }

        if spec_is_sink {
            let alive = self
                .roots
                .get(&batch.root)
                .is_some_and(|r| !r.failed && now <= r.deadline);
            if alive {
                self.totals.tuples_completed += u64::from(batch.tuples);
                self.stats.record_processed(
                    &self.build.specs[i].topology,
                    &self.build.specs[i].component,
                    now,
                    u64::from(batch.tuples),
                );
            }
        } else if !spec_is_spout {
            self.stats.record_processed(
                &self.build.specs[i].topology,
                &self.build.specs[i].component,
                now,
                u64::from(batch.tuples),
            );
        }

        // Emission: anchor new copies on the root *before* releasing this
        // batch's own pending slot, so the root cannot complete early.
        if self.build.specs[i].emit_factor > 0.0 && !self.build.specs[i].consumers.is_empty() {
            self.tasks[i].emit_acc += self.build.specs[i].emit_factor;
            let n_out = self.tasks[i].emit_acc.floor() as u32;
            self.tasks[i].emit_acc -= f64::from(n_out);
            for _ in 0..n_out {
                self.emit(i, batch);
            }
        }

        self.finish_pending(batch.root);

        self.tasks[i].busy = false;
        if spec_is_spout {
            let now = self.queue.now();
            self.queue.schedule(now, Ev::TrySpout(i));
        } else if let Some(next) = self.tasks[i].queue.pop_front() {
            self.start_processing(i, next);
        }
    }

    fn start_processing(&mut self, i: usize, batch: Batch) {
        let now = self.queue.now();
        let work = f64::from(batch.tuples) * self.build.specs[i].work_ms_per_tuple;
        let done = self.cpus[self.build.specs[i].node_idx].serve(now, i, work);
        self.tasks[i].busy = true;
        self.queue.schedule(done, Ev::WorkDone(i, batch));
    }

    // ---- routing -------------------------------------------------------

    fn emit(&mut self, from: usize, batch: Batch) {
        let group_count = self.build.specs[from].consumers.len();
        for g in 0..group_count {
            let targets = self.pick_targets(from, g);
            for to in targets {
                self.transfer(from, to, batch);
            }
        }
    }

    fn pick_targets(&mut self, from: usize, group: usize) -> Vec<usize> {
        let group = &self.build.specs[from].consumers[group];
        let targets = &group.targets;
        debug_assert!(!targets.is_empty(), "validated topologies have tasks");
        match &group.grouping {
            StreamGrouping::Shuffle | StreamGrouping::Fields(_) => {
                // Fields grouping with uniformly distributed keys is
                // statistically identical to shuffle at this granularity.
                vec![targets[self.rng.gen_range(0..targets.len())]]
            }
            StreamGrouping::All => targets.clone(),
            StreamGrouping::Global => vec![targets[0]],
            StreamGrouping::LocalOrShuffle => {
                let from_slot = &self.build.specs[from].slot;
                let local: Vec<usize> = targets
                    .iter()
                    .copied()
                    .filter(|&t| self.build.specs[t].slot == *from_slot)
                    .collect();
                let pool = if local.is_empty() { targets } else { &local };
                vec![pool[self.rng.gen_range(0..pool.len())]]
            }
        }
    }

    fn transfer(&mut self, from: usize, to: usize, batch: Batch) {
        let now = self.queue.now();
        let costs = self.cluster.costs();
        let relation = relation_of(&self.build.specs[from], &self.build.specs[to]);
        let bytes = self.build.specs[from]
            .tuple_bytes
            .saturating_mul(batch.tuples);
        let latency = costs.latency_ms(relation);

        let arrival = match relation {
            PlacementRelation::SameWorker | PlacementRelation::SameNode => now + latency,
            PlacementRelation::SameRack => {
                let t1 = self.egress[self.build.specs[from].node_idx].serve(now, bytes);
                let t2 = self.ingress[self.build.specs[to].node_idx].serve(t1, bytes);
                t2 + latency
            }
            PlacementRelation::InterRack => {
                let t1 = self.egress[self.build.specs[from].node_idx].serve(now, bytes);
                let t2 = self.uplink.serve(t1, bytes);
                let t3 = self.ingress[self.build.specs[to].node_idx].serve(t2, bytes);
                t3 + latency
            }
        };

        if let Some(root) = self.roots.get_mut(&batch.root) {
            root.pending += 1;
        }
        self.queue.schedule(arrival, Ev::Deliver(to, batch));
    }

    // ---- delivery ------------------------------------------------------

    fn deliver(&mut self, i: usize, batch: Batch) {
        self.totals.batches_delivered += 1;
        // Shed batches whose root already timed out: the real system's
        // queues would be drained of them by the replay mechanism, and
        // processing them would let queues grow without bound.
        let stale = self.roots.get(&batch.root).is_none_or(|r| r.failed);
        if stale {
            self.totals.batches_dropped += 1;
            self.finish_pending(batch.root);
            return;
        }
        if self.tasks[i].busy {
            self.tasks[i].queue.push_back(batch);
        } else {
            self.start_processing(i, batch);
        }
    }

    // ---- root lifecycle -------------------------------------------------

    /// Releases one pending slot of `root`, completing it if this was the
    /// last one.
    fn finish_pending(&mut self, root: u64) {
        let Some(state) = self.roots.get_mut(&root) else {
            return;
        };
        state.pending -= 1;
        if state.pending > 0 {
            return;
        }
        let failed = state.failed;
        let spout = state.spout;
        let born = state.born;
        self.roots.remove(&root);
        if !failed {
            self.totals.roots_completed += 1;
            self.latency.record(self.queue.now() - born);
            self.return_credit(spout);
        }
    }

    fn root_timeout(&mut self, root: u64) {
        let Some(state) = self.roots.get_mut(&root) else {
            return; // Completed before the deadline.
        };
        if state.failed {
            return;
        }
        state.failed = true;
        let spout = state.spout;
        self.totals.roots_timed_out += 1;
        // Storm replays the tuple: the credit returns to the spout even
        // though stale descendants may still be in flight.
        self.return_credit(spout);
    }

    fn return_credit(&mut self, spout: usize) {
        self.tasks[spout].credits += 1;
        if self.tasks[spout].waiting_for_credit {
            self.tasks[spout].waiting_for_credit = false;
            let now = self.queue.now();
            self.queue.schedule(now, Ev::TrySpout(spout));
        }
    }

    // ---- reporting ------------------------------------------------------

    fn report(self) -> SimReport {
        let elapsed = self.config.sim_time_ms;
        let mut tracker = CpuUtilizationTracker::new();
        for (i, cpu) in self.cpus.iter().enumerate() {
            tracker.register_node(self.node_names[i].clone(), cpu.cores());
            if cpu.busy_core_ms() > 0.0 {
                // Work committed past the horizon is clamped so that
                // utilization stays within physical capacity.
                let capacity = cpu.cores() * cpu.thrash() * elapsed;
                tracker.add_busy(&self.node_names[i], cpu.busy_core_ms().min(capacity));
            }
        }

        let mut throughput = std::collections::BTreeMap::new();
        let mut used_by_topology = std::collections::BTreeMap::new();
        for t in &self.build.topo_names {
            throughput.insert(t.clone(), self.stats.topology_throughput(t, elapsed));
            let used: BTreeSet<String> = self
                .build
                .specs
                .iter()
                .filter(|s| &s.topology == t)
                .map(|s| s.slot.node.as_str().to_owned())
                .collect();
            used_by_topology.insert(t.clone(), used.len());
        }

        let node_utilization = tracker.used_node_utilizations(elapsed);
        SimReport {
            duration_ms: elapsed,
            window_ms: self.config.window_ms,
            throughput,
            mean_used_cpu_utilization: tracker.mean_used_utilization(elapsed),
            used_nodes: tracker.used_node_count(),
            used_nodes_by_topology: used_by_topology,
            node_utilization,
            inter_rack_mb: self.uplink.served_bytes() / 1e6,
            latency_ms: self.latency.summary(),
            totals: self.totals,
            // The reference engine models no faults and only the legacy
            // network; parity runs compare against fast runs where both
            // sections are `None` too.
            recovery: None,
            network: None,
            // The reference engine has no pools or precomputed routes;
            // only the event count is meaningful here.
            debug: SimDebugStats {
                events: self.events,
                ..SimDebugStats::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_core::{GlobalState, RStormScheduler, Scheduler};
    use rstorm_topology::{ExecutionProfile, TopologyBuilder};

    fn mixed_topology(name: &str) -> Topology {
        let mut b = TopologyBuilder::new(name);
        b.set_spout("s", 2)
            .set_profile(ExecutionProfile::new(0.05, 1.0, 200))
            .set_memory_load(64.0);
        b.set_bolt("all", 2)
            .all_grouping("s")
            .set_profile(ExecutionProfile::new(0.02, 1.0, 200))
            .set_memory_load(64.0);
        b.set_bolt("local", 3)
            .local_or_shuffle_grouping("all")
            .set_profile(ExecutionProfile::new(0.02, 1.0, 200))
            .set_memory_load(64.0);
        b.set_bolt("sink", 1)
            .global_grouping("local")
            .set_profile(ExecutionProfile::new(0.02, 0.0, 200))
            .set_memory_load(64.0);
        b.build().unwrap()
    }

    #[test]
    fn reference_matches_fast_engine_bit_for_bit() {
        let cluster = Arc::new(
            ClusterBuilder::new()
                .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 4)
                .build()
                .unwrap(),
        );
        let t = mixed_topology("mix");
        let mut state = GlobalState::new(&cluster);
        let assignment = RStormScheduler::new()
            .schedule(&t, &cluster, &mut state)
            .unwrap();

        let mut fast = Simulation::new(Arc::clone(&cluster), SimConfig::quick());
        fast.add_topology(&t, &assignment);
        let fast = fast.run();

        let mut reference = ReferenceSimulation::new(Arc::clone(&cluster), SimConfig::quick());
        reference.add_topology(&t, &assignment);
        let reference = reference.run();

        // `==` covers every physical field; sharpen the float-bearing
        // ones to bit equality explicitly.
        assert_eq!(fast, reference);
        assert_eq!(
            fast.inter_rack_mb.to_bits(),
            reference.inter_rack_mb.to_bits()
        );
        assert_eq!(
            fast.latency_ms.mean.to_bits(),
            reference.latency_ms.mean.to_bits()
        );
        for (topo, thr) in &fast.throughput {
            let ref_thr = &reference.throughput[topo];
            for (a, b) in thr.windows.iter().zip(&ref_thr.windows) {
                assert_eq!(a.to_bits(), b.to_bits(), "window mismatch in {topo}");
            }
        }
        // Both engines processed the same event sequence.
        assert_eq!(fast.debug.events, reference.debug.events);
        assert_eq!(fast.to_json(), reference.to_json());
    }

    #[test]
    #[should_panic(expected = "at least one topology")]
    fn empty_reference_simulation_rejected() {
        let cluster = ClusterBuilder::new()
            .add_node("n", "r0", ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap();
        ReferenceSimulation::new(cluster, SimConfig::quick()).run();
    }
}
