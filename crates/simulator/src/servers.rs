//! FIFO resource servers: the contention primitives of the simulator.
//!
//! Every contended resource (a node's CPU, a NIC direction, the inter-rack
//! uplink) is modeled as a work-conserving FIFO server characterized by a
//! service rate. Committing work returns the completion time; backlog
//! accumulates in the server's `busy_until` horizon, which is what turns
//! over-subscription into latency and, through the spout credit loop, into
//! backpressure.

/// A FIFO link server with a fixed service rate in bytes per millisecond.
#[derive(Debug, Clone)]
pub struct LinkServer {
    rate_bytes_per_ms: f64,
    busy_until: f64,
    served_bytes: f64,
}

impl LinkServer {
    /// Creates a server from a rate in megabits per second.
    ///
    /// # Zero-bandwidth contract
    ///
    /// A link with no capacity cannot serialize any byte, and a FIFO
    /// server has no way to express "this transfer never completes"
    /// except by returning a meaningless `+inf`/`NaN` completion time
    /// that would silently poison every downstream latency statistic.
    /// The constructor therefore refuses the configuration outright:
    /// `mbps` must be finite and strictly positive, and zero, negative,
    /// infinite and `NaN` rates all panic here — at build time, with the
    /// offending value in the message — instead of surfacing as a
    /// division hazard mid-run. Severed connectivity is modeled by the
    /// fault plane (rack partitions drop the batches), never by a
    /// zero-rate link.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is not finite or not strictly positive.
    pub fn from_mbps(mbps: f64) -> Self {
        assert!(
            mbps.is_finite() && mbps > 0.0,
            "link rate must be positive, got {mbps}"
        );
        Self {
            // Mbps → bytes/ms: 1 Mb = 125_000 bytes, 1 s = 1000 ms.
            rate_bytes_per_ms: mbps * 125.0,
            busy_until: 0.0,
            served_bytes: 0.0,
        }
    }

    /// Commits a transfer of `bytes` arriving at `at`; returns when the
    /// last byte has been serialized.
    pub fn serve(&mut self, at: f64, bytes: u32) -> f64 {
        let start = self.busy_until.max(at);
        let done = start + f64::from(bytes) / self.rate_bytes_per_ms;
        self.busy_until = done;
        self.served_bytes += f64::from(bytes);
        done
    }

    /// Total bytes this server has carried.
    pub fn served_bytes(&self) -> f64 {
        self.served_bytes
    }

    /// The time the server next becomes free.
    #[allow(dead_code)] // part of the server's natural API; used in tests
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }
}

/// The legacy per-node link fabric shared by the fast engine and the
/// reference oracle: one egress and one ingress NIC server per node at
/// `node_mbps`, plus a single global inter-rack uplink at `uplink_mbps`.
/// Both engines must build their servers through this one helper so the
/// fabric can never drift between them.
pub fn legacy_link_fabric(
    nodes: usize,
    node_mbps: f64,
    uplink_mbps: f64,
) -> (Vec<LinkServer>, Vec<LinkServer>, LinkServer) {
    let egress = (0..nodes)
        .map(|_| LinkServer::from_mbps(node_mbps))
        .collect();
    let ingress = (0..nodes)
        .map(|_| LinkServer::from_mbps(node_mbps))
        .collect();
    let uplink = LinkServer::from_mbps(uplink_mbps);
    (egress, ingress, uplink)
}

/// A node's CPU under **max-min fair processor sharing** (the behaviour
/// of an OS scheduler like CFS across the worker processes on a machine):
///
/// * each *task* is single-threaded — it can never use more than one
///   core, and its batches execute sequentially;
/// * when the node is over-committed, tasks whose demand is below their
///   fair share are served in full, while tasks demanding more than
///   their share are slowed to it — an over-sized task starves (and its
///   queue diverges) without dragging its light neighbours down.
///
/// Task demand is estimated online with an exponentially decayed
/// accumulator of submitted work. The distinction between protected
/// light tasks and starved heavy tasks is what lets a resource-oblivious
/// schedule kill one topology while another one on the same machines
/// merely degrades (§6.5 of the paper).
#[derive(Debug, Clone)]
pub struct CpuServer {
    cores: f64,
    /// Thrash multiplier in (0, 1]: < 1 when the node's memory is
    /// over-committed.
    thrash: f64,
    tasks: std::collections::HashMap<usize, TaskCpu>,
    busy_core_ms: f64,
}

#[derive(Debug, Clone, Copy)]
struct TaskCpu {
    busy_until: f64,
    demand_acc: f64,
    last_update: f64,
}

/// Demand estimation time constant (ms).
const DEMAND_TAU_MS: f64 = 2_000.0;

impl CpuServer {
    /// Creates a CPU server.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not positive or `thrash` is outside (0, 1].
    pub fn new(cores: f64, thrash: f64) -> Self {
        assert!(
            cores.is_finite() && cores > 0.0,
            "core count must be positive, got {cores}"
        );
        assert!(
            thrash.is_finite() && thrash > 0.0 && thrash <= 1.0,
            "thrash factor must be in (0, 1], got {thrash}"
        );
        Self {
            cores,
            thrash,
            tasks: std::collections::HashMap::new(),
            busy_core_ms: 0.0,
        }
    }

    /// Commits `work_core_ms` of work for `task` submitted at `at`;
    /// returns the completion time.
    pub fn serve(&mut self, at: f64, task: usize, work_core_ms: f64) -> f64 {
        // Update the submitting task's decayed demand estimate.
        {
            let entry = self.tasks.entry(task).or_insert(TaskCpu {
                busy_until: 0.0,
                demand_acc: 0.0,
                last_update: at,
            });
            let dt = (at - entry.last_update).max(0.0);
            entry.demand_acc = entry.demand_acc * (-dt / DEMAND_TAU_MS).exp() + work_core_ms;
            entry.last_update = at;
        }

        // Demands in cores, capped at 1.0 (a task is single-threaded).
        let mut demands: Vec<(usize, f64)> = self
            .tasks
            .iter()
            .map(|(&id, t)| {
                let dt = (at - t.last_update).max(0.0);
                let d = t.demand_acc * (-dt / DEMAND_TAU_MS).exp() / DEMAND_TAU_MS;
                (id, d.min(1.0))
            })
            .collect();

        let capacity = self.cores * self.thrash;
        let alloc = max_min_alloc(&mut demands, capacity, task);
        let demand = demands
            .iter()
            .find(|(id, _)| *id == task)
            .map_or(0.0, |&(_, d)| d);
        // A task whose demand fits its fair share runs at single-core
        // speed (it simply idles between batches); a starved task runs at
        // its allocation — `1/alloc` cores — which is what makes its
        // backlog diverge while protected neighbours are unaffected. The
        // thrash factor always applies.
        let fair_stretch = if demand > alloc + 1e-9 {
            (1.0 / alloc.max(1e-6)).max(1.0)
        } else {
            1.0
        };
        let multiplier = fair_stretch / self.thrash;

        let entry = self.tasks.get_mut(&task).expect("inserted above");
        let start = entry.busy_until.max(at);
        let done = start + work_core_ms * multiplier;
        entry.busy_until = done;
        self.busy_core_ms += work_core_ms;
        done
    }

    /// Total core-milliseconds of work served.
    pub fn busy_core_ms(&self) -> f64 {
        self.busy_core_ms
    }

    /// The configured core count.
    pub fn cores(&self) -> f64 {
        self.cores
    }

    /// The thrash multiplier.
    pub fn thrash(&self) -> f64 {
        self.thrash
    }
}

/// A node's CPU with the same max-min fair model as [`CpuServer`], but
/// with dense storage: per-task state lives in a `Vec` indexed by a
/// node-local slot assigned at build time, and the demand scan reuses a
/// scratch buffer, so steady-state `serve` does no hashing and no heap
/// allocation.
///
/// Given the same sequence of `serve` calls, the completion times are
/// bit-for-bit identical to [`CpuServer`]'s: the demand update and decay
/// use the same arithmetic in the same order, and the max-min allocation
/// sorts candidates by `(demand, global task id)` — a total order — so
/// the water-filling fold visits the same values in the same order
/// regardless of how the candidates were gathered. Tasks that have never
/// submitted work are excluded from the scan, mirroring the reference
/// server's lazily created map entries.
#[derive(Debug, Clone)]
pub struct DenseCpuServer {
    cores: f64,
    thrash: f64,
    tasks: Vec<DenseTaskCpu>,
    /// Global simulator task index of each local slot — the sort key that
    /// keeps tie-breaks identical to the reference server's.
    global_ids: Vec<usize>,
    /// Local slots that have submitted work at least once, in first-
    /// submission order.
    active: Vec<u32>,
    /// Reused demand buffer for the max-min scan.
    scratch: Vec<(usize, f64)>,
    busy_core_ms: f64,
}

#[derive(Debug, Clone, Copy)]
struct DenseTaskCpu {
    busy_until: f64,
    demand_acc: f64,
    last_update: f64,
    is_active: bool,
}

impl DenseCpuServer {
    /// Creates a server for the tasks whose global ids are `global_ids`;
    /// local slot `k` corresponds to `global_ids[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not positive or `thrash` is outside (0, 1].
    pub fn new(cores: f64, thrash: f64, global_ids: Vec<usize>) -> Self {
        assert!(
            cores.is_finite() && cores > 0.0,
            "core count must be positive, got {cores}"
        );
        assert!(
            thrash.is_finite() && thrash > 0.0 && thrash <= 1.0,
            "thrash factor must be in (0, 1], got {thrash}"
        );
        let n = global_ids.len();
        Self {
            cores,
            thrash,
            tasks: vec![
                DenseTaskCpu {
                    busy_until: 0.0,
                    demand_acc: 0.0,
                    last_update: 0.0,
                    is_active: false,
                };
                n
            ],
            global_ids,
            active: Vec::with_capacity(n),
            scratch: Vec::with_capacity(n),
            busy_core_ms: 0.0,
        }
    }

    /// Commits `work_core_ms` of work for the task at local slot `local`
    /// submitted at `at`; returns the completion time.
    pub fn serve(&mut self, at: f64, local: usize, work_core_ms: f64) -> f64 {
        {
            let entry = &mut self.tasks[local];
            if !entry.is_active {
                entry.is_active = true;
                entry.last_update = at;
                self.active.push(local as u32);
            }
            let dt = (at - entry.last_update).max(0.0);
            entry.demand_acc = entry.demand_acc * (-dt / DEMAND_TAU_MS).exp() + work_core_ms;
            entry.last_update = at;
        }

        // Demands in cores, capped at 1.0 (a task is single-threaded).
        self.scratch.clear();
        for &slot in &self.active {
            let t = &self.tasks[slot as usize];
            let dt = (at - t.last_update).max(0.0);
            let d = t.demand_acc * (-dt / DEMAND_TAU_MS).exp() / DEMAND_TAU_MS;
            self.scratch
                .push((self.global_ids[slot as usize], d.min(1.0)));
        }

        let capacity = self.cores * self.thrash;
        let task_gid = self.global_ids[local];
        let alloc = max_min_alloc(&mut self.scratch, capacity, task_gid);
        let demand = self
            .scratch
            .iter()
            .find(|(id, _)| *id == task_gid)
            .map_or(0.0, |&(_, d)| d);
        let fair_stretch = if demand > alloc + 1e-9 {
            (1.0 / alloc.max(1e-6)).max(1.0)
        } else {
            1.0
        };
        let multiplier = fair_stretch / self.thrash;

        let entry = &mut self.tasks[local];
        let start = entry.busy_until.max(at);
        let done = start + work_core_ms * multiplier;
        entry.busy_until = done;
        self.busy_core_ms += work_core_ms;
        done
    }

    /// Total core-milliseconds of work served.
    pub fn busy_core_ms(&self) -> f64 {
        self.busy_core_ms
    }

    /// The configured core count.
    pub fn cores(&self) -> f64 {
        self.cores
    }

    /// The thrash multiplier.
    pub fn thrash(&self) -> f64 {
        self.thrash
    }

    /// Grows the server by one slot for a task migrating onto this node;
    /// returns the new local slot. The task starts with no demand history
    /// (a restarted executor is cold).
    pub fn add_task(&mut self, global_id: usize) -> u32 {
        let slot = self.tasks.len() as u32;
        self.tasks.push(DenseTaskCpu {
            busy_until: 0.0,
            demand_acc: 0.0,
            last_update: 0.0,
            is_active: false,
        });
        self.global_ids.push(global_id);
        slot
    }

    /// Removes a migrated-away task's slot from the fair-share scan. The
    /// slot itself stays allocated (dense indices never shift) but no
    /// longer competes for capacity. Idempotent.
    pub fn deactivate(&mut self, local: usize) {
        if self.tasks[local].is_active {
            self.tasks[local].is_active = false;
            self.active.retain(|&s| s as usize != local);
        }
    }

    /// Updates the thrash multiplier (a migration changing a node's
    /// memory demand moves it across the over-commit boundary).
    ///
    /// # Panics
    ///
    /// Panics if `thrash` is outside (0, 1].
    pub fn set_thrash(&mut self, thrash: f64) {
        assert!(
            thrash.is_finite() && thrash > 0.0 && thrash <= 1.0,
            "thrash factor must be in (0, 1], got {thrash}"
        );
        self.thrash = thrash;
    }
}

/// Water-filling max-min fair allocation: returns the share of `task`.
/// Tasks demanding less than an equal split keep their demand; the
/// leftover is split among the rest.
fn max_min_alloc(demands: &mut [(usize, f64)], capacity: f64, task: usize) -> f64 {
    demands.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let mut remaining = capacity;
    let mut left = demands.len();
    for &(id, d) in demands.iter() {
        let share = remaining / left as f64;
        let alloc = d.min(share);
        if id == task {
            return alloc;
        }
        remaining -= alloc;
        left -= 1;
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_serializes_back_to_back() {
        // 100 Mbps = 12_500 bytes/ms.
        let mut l = LinkServer::from_mbps(100.0);
        let t1 = l.serve(0.0, 12_500);
        assert!((t1 - 1.0).abs() < 1e-9);
        // Second transfer queues behind the first.
        let t2 = l.serve(0.0, 12_500);
        assert!((t2 - 2.0).abs() < 1e-9);
        // A transfer arriving after the backlog clears starts immediately.
        let t3 = l.serve(10.0, 12_500);
        assert!((t3 - 11.0).abs() < 1e-9);
        assert_eq!(l.served_bytes(), 37_500.0);
        assert!((l.busy_until() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_single_batch_runs_at_one_core() {
        // 4 cores, but a lone 10 ms batch still takes 10 ms.
        let mut c = CpuServer::new(4.0, 1.0);
        let done = c.serve(0.0, 7, 10.0);
        assert_eq!(done, 10.0);
        assert_eq!(c.busy_core_ms(), 10.0);
    }

    #[test]
    fn same_task_batches_serialize() {
        let mut c = CpuServer::new(4.0, 1.0);
        assert_eq!(c.serve(0.0, 0, 5.0), 5.0);
        assert_eq!(c.serve(0.0, 0, 5.0), 10.0);
        assert_eq!(c.serve(0.0, 0, 5.0), 15.0);
    }

    #[test]
    fn light_task_is_protected_from_a_heavy_neighbor() {
        // Task 0 hammers a 1-core node (demand ~1.0); task 1 trickles in
        // (demand ~0.1). Max-min fairness must serve task 1 at full speed.
        let mut c = CpuServer::new(1.0, 1.0);
        let mut t = 0.0;
        for _ in 0..400 {
            c.serve(t, 0, 10.0); // heavy: 10 ms work every 10 ms
            if (t as u64).is_multiple_of(100) {
                c.serve(t, 1, 1.0); // light: 1 ms work every 100 ms
            }
            t += 10.0;
        }
        // Steady state: the light task's next batch is barely stretched.
        let start = t;
        let done = c.serve(start, 1, 1.0);
        assert!(
            done - start < 1.5,
            "light task stretched to {} ms for 1 ms of work",
            done - start
        );
    }

    #[test]
    fn two_heavy_tasks_split_a_core() {
        // Both tasks demand a full core on a 1-core node: each ends up
        // served at ~half speed once demand estimates converge.
        let mut c = CpuServer::new(1.0, 1.0);
        let mut t = 0.0;
        for _ in 0..600 {
            c.serve(t, 0, 10.0);
            c.serve(t, 1, 10.0);
            t += 10.0;
        }
        let start = t;
        let done = c.serve(start, 0, 10.0);
        // Note: busy_until for task 0 is far in the future by now; measure
        // the stretch of the service itself via a fresh probe window.
        assert!(
            done - start > 15.0,
            "heavy task should be stretched, got {} ms",
            done - start
        );
    }

    #[test]
    fn thrash_slows_everything() {
        let mut healthy = CpuServer::new(1.0, 1.0);
        let mut thrashing = CpuServer::new(1.0, 0.1);
        assert_eq!(healthy.serve(0.0, 0, 10.0), 10.0);
        assert_eq!(thrashing.serve(0.0, 0, 10.0), 100.0);
        assert_eq!(thrashing.thrash(), 0.1);
    }

    #[test]
    fn accessors() {
        let c = CpuServer::new(3.0, 1.0);
        assert_eq!(c.cores(), 3.0);
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn zero_cores_rejected() {
        CpuServer::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "thrash factor")]
    fn bad_thrash_rejected() {
        CpuServer::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "link rate")]
    fn zero_rate_link_rejected() {
        LinkServer::from_mbps(0.0);
    }

    #[test]
    fn zero_bandwidth_contract_rejects_every_degenerate_rate() {
        // The contract is "finite and strictly positive": each
        // degenerate spelling of "no usable capacity" must be refused at
        // construction instead of producing inf/NaN completion times.
        for bad in [
            0.0,
            -0.0,
            -100.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ] {
            let res = std::panic::catch_unwind(|| LinkServer::from_mbps(bad));
            assert!(res.is_err(), "rate {bad} must be rejected");
        }
        // And the boundary of the contract: any strictly positive finite
        // rate is accepted and serves finite completion times.
        let mut l = LinkServer::from_mbps(f64::MIN_POSITIVE);
        let done = l.serve(0.0, 1);
        assert!(done.is_finite() && done > 0.0);
    }

    #[test]
    fn legacy_fabric_is_one_nic_pair_per_node_plus_one_uplink() {
        let (egress, ingress, uplink) = legacy_link_fabric(3, 100.0, 600.0);
        assert_eq!(egress.len(), 3);
        assert_eq!(ingress.len(), 3);
        let mut nic = egress[0].clone();
        // 100 Mbps = 12_500 bytes/ms.
        assert!((nic.serve(0.0, 12_500) - 1.0).abs() < 1e-9);
        let mut trunk = uplink.clone();
        assert!((trunk.serve(0.0, 75_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dense_server_matches_reference_bit_for_bit() {
        // Same pseudo-random serve sequence through both servers: every
        // completion time and the busy accounting must be identical down
        // to the bit pattern.
        let global_ids = vec![17, 3, 99, 42];
        let mut reference = CpuServer::new(2.0, 0.8);
        let mut dense = DenseCpuServer::new(2.0, 0.8, global_ids.clone());
        let mut t = 0.0;
        let mut x: u64 = 0x2545F491;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let local = (x >> 33) as usize % 4;
            let work = 1.0 + ((x >> 7) % 20) as f64;
            let a = reference.serve(t, global_ids[local], work);
            let b = dense.serve(t, local, work);
            assert_eq!(a.to_bits(), b.to_bits(), "diverged at t={t}");
            t += ((x >> 13) % 8) as f64;
        }
        assert_eq!(
            reference.busy_core_ms().to_bits(),
            dense.busy_core_ms().to_bits()
        );
    }

    #[test]
    fn dense_server_excludes_never_served_tasks() {
        // A slot that never submits work must not count toward the fair
        // shares (the reference server has no map entry for it).
        let mut reference = CpuServer::new(1.0, 1.0);
        let mut dense = DenseCpuServer::new(1.0, 1.0, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mut t = 0.0;
        for _ in 0..300 {
            // Only slots 0 and 1 are ever used; 6 idle slots exist.
            let a0 = reference.serve(t, 0, 10.0);
            let b0 = dense.serve(t, 0, 10.0);
            let a1 = reference.serve(t, 1, 10.0);
            let b1 = dense.serve(t, 1, 10.0);
            assert_eq!(a0.to_bits(), b0.to_bits());
            assert_eq!(a1.to_bits(), b1.to_bits());
            t += 10.0;
        }
        assert_eq!(dense.cores(), 1.0);
        assert_eq!(dense.thrash(), 1.0);
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn dense_zero_cores_rejected() {
        DenseCpuServer::new(0.0, 1.0, vec![]);
    }

    #[test]
    fn migrated_task_stops_competing_and_restarts_cold() {
        // Two heavy tasks share a 1-core node; deactivating one must give
        // the survivor the whole core again, and the migrant must compete
        // on its destination as a fresh (zero-demand) task.
        let mut src = DenseCpuServer::new(1.0, 1.0, vec![0, 1]);
        let mut dst = DenseCpuServer::new(1.0, 1.0, vec![2]);
        let mut t = 0.0;
        for _ in 0..600 {
            src.serve(t, 0, 10.0);
            src.serve(t, 1, 10.0);
            t += 10.0;
        }
        src.deactivate(1);
        let slot = dst.add_task(1);
        assert_eq!(slot, 1);
        // Survivor: a fresh probe window is served at ~full speed once
        // the fair share covers its demand again... its demand is ~1.0
        // core, so with the neighbor gone it is no longer stretched.
        let start = t + 10_000.0; // let history decay
        let done = src.serve(start, 0, 10.0);
        assert!(
            done - start < 15.0,
            "survivor should get the core back, stretched to {}",
            done - start
        );
        // Migrant on the destination: cold start, served immediately.
        let done = dst.serve(start, slot as usize, 10.0);
        assert!((done - start - 10.0).abs() < 1e-9);
        src.deactivate(1); // idempotent
        dst.set_thrash(0.5);
        assert_eq!(dst.thrash(), 0.5);
    }

    #[test]
    #[should_panic(expected = "thrash factor")]
    fn dense_bad_set_thrash_rejected() {
        DenseCpuServer::new(1.0, 1.0, vec![0]).set_thrash(0.0);
    }
}
