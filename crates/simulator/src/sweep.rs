//! The Monte-Carlo sweep fleet: seeded scenario grids fanned across a
//! worker-thread pool.
//!
//! Every plane of this workspace (chaos, replay, adaptive) is
//! deterministic and seedable, but each smoke benchmark runs a handful of
//! scenarios serially — point estimates, not distributions. A
//! [`SweepGrid`] crosses *cases × schedulers × fault specs × seeds* into
//! an indexed job list; [`run_sweep`] executes the jobs on a fixed-size
//! pool of `std::thread` workers and aggregates the per-run rows into
//! per-group distributions (p50/p90/p99 time-to-detect/recover, zero-loss
//! ratio, net-throughput mean ± stdev, tuples-lost histogram).
//!
//! ## Determinism under parallelism
//!
//! The pool deliberately does **no work stealing**: jobs are expanded in
//! a fixed nesting order (case → scheduler → fault → seed), workers pull
//! the next job index from a shared atomic counter, and every result is
//! written back into its job's slot. Aggregation then walks the slots in
//! index order, so [`SweepSummary::to_json`] is **byte-identical for any
//! worker count** — `--workers 1` and `--workers 8` produce the same
//! payload, which the determinism test pins. Wall-clock and speedup
//! metadata live outside the aggregated payload for exactly this reason.
//!
//! ## `Send` audit
//!
//! Fanning [`Simulation`] runs across threads requires the whole run path
//! to be `Send`. The audit: the simulator crate (and every crate below
//! it) is `#![forbid(unsafe_code)]`; the engine holds no `Rc`, `RefCell`,
//! `Cell` or raw pointers — the slab pool and tuple-tree slabs are plain
//! `Vec`-backed free lists, the RNG is a `[u64; 4]` xoshiro state, and
//! the only shared handles are `Arc<Cluster>` (immutable) and
//! `Arc<StatisticServer>` (a `Mutex`-guarded aggregator, `Send + Sync`).
//! The `assert_send` block below turns that audit into a compile-time
//! guarantee: if a future change smuggles non-`Send` state into
//! [`Simulation`], this module stops compiling.

use crate::chaos::{run_crash_recover_with, run_fault_plan_with, ChaosConfig};
use crate::config::SimConfig;
use crate::faults::FaultPlan;
use crate::report::SimReport;
use crate::sim::Simulation;
use rstorm_cluster::Cluster;
use rstorm_core::{schedulers, GlobalState, RecoveryConfig, Scheduler};
use rstorm_metrics::Summary;
use rstorm_topology::Topology;
use std::fmt;
use std::fmt::Write as _;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Compile-time proof that the fast engine's run path can cross thread
/// boundaries (see the module docs for the audit this pins).
const fn assert_send<T: Send>() {}
const _: () = {
    assert_send::<Simulation>();
    assert_send::<SimReport>();
    assert_send::<SweepRow>();
};

/// Warm-up windows skipped when averaging steady-state throughput,
/// matching the bench harness convention.
const WARMUP_WINDOWS: usize = 2;

// ---- seed ranges --------------------------------------------------------

/// A half-open seed range `start..end`, the `--seeds A..B` CLI argument.
/// Construction rejects empty and inverted ranges, so a held value always
/// names at least one seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedRange {
    start: u64,
    end: u64,
}

impl SeedRange {
    /// Creates the range `start..end`.
    ///
    /// # Errors
    ///
    /// [`ParseRangeError::EmptyOrInverted`] unless `start < end`.
    pub fn new(start: u64, end: u64) -> Result<Self, ParseRangeError> {
        if start >= end {
            return Err(ParseRangeError::EmptyOrInverted { start, end });
        }
        Ok(Self { start, end })
    }

    /// First seed of the range.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last seed.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Number of seeds in the range (at least 1 by construction).
    #[allow(clippy::len_without_is_empty)] // empty ranges are unconstructible
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// The seeds in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> {
        self.start..self.end
    }
}

impl fmt::Display for SeedRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

impl FromStr for SeedRange {
    type Err = ParseRangeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (lo, hi) = s
            .split_once("..")
            .ok_or_else(|| ParseRangeError::MissingSeparator(s.to_owned()))?;
        let start: u64 = lo
            .trim()
            .parse()
            .map_err(|_| ParseRangeError::InvalidBound(lo.trim().to_owned()))?;
        let end: u64 = hi
            .trim()
            .parse()
            .map_err(|_| ParseRangeError::InvalidBound(hi.trim().to_owned()))?;
        Self::new(start, end)
    }
}

/// Why a seed-range argument was rejected — a typed error so the CLI can
/// report it without panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseRangeError {
    /// The argument has no `..` separator.
    MissingSeparator(String),
    /// A bound is not a non-negative integer (the offending token).
    InvalidBound(String),
    /// `start >= end`: the range selects no seeds.
    EmptyOrInverted {
        /// The parsed lower bound.
        start: u64,
        /// The parsed upper bound.
        end: u64,
    },
}

impl fmt::Display for ParseRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingSeparator(raw) => {
                write!(f, "`{raw}` is not a range; expected `start..end`")
            }
            Self::InvalidBound(raw) => {
                write!(f, "range bound `{raw}` is not a non-negative integer")
            }
            Self::EmptyOrInverted { start, end } => write!(
                f,
                "range {start}..{end} selects no seeds (need start < end)"
            ),
        }
    }
}

impl std::error::Error for ParseRangeError {}

// ---- the grid -----------------------------------------------------------

/// One named workload of a sweep: a topology on a (shared) cluster.
#[derive(Debug)]
pub struct SweepCase {
    /// Stable case name, the first segment of each group name.
    pub name: String,
    /// The workload topology.
    pub topology: Topology,
    /// The cluster it runs on, shared across all of the case's jobs.
    pub cluster: Arc<Cluster>,
}

/// The fault dimension of the grid.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// No injected faults: a plain (replay-enabled) run.
    Healthy,
    /// Crash the placement's host node at `crash_at_ms`, heal it at
    /// `heal_at_ms` — the survivable outage of the chaos/replay smokes.
    CrashRecover {
        /// Simulation time of the crash in milliseconds.
        crash_at_ms: f64,
        /// Simulation time the victim heals in milliseconds.
        heal_at_ms: f64,
    },
    /// Crash the host node at `crash_at_ms` and never heal it: recovery
    /// depends entirely on re-placement onto survivors, and long runs may
    /// legitimately quarantine roots (not survivable, so sweep-level
    /// zero-loss gates skip these groups).
    CrashLasting {
        /// Simulation time of the crash in milliseconds.
        crash_at_ms: f64,
    },
    /// Partition the host node's rack over `[at_ms, until_ms)`: every
    /// inter-rack transfer to or from the rack is dropped and the rack's
    /// heartbeats go silent, then the window heals (see
    /// [`crate::faults::FaultEvent::RackPartition`]). Survivable — the
    /// partition ends, so replay can settle every root.
    Partition {
        /// Start of the partition window in milliseconds.
        at_ms: f64,
        /// End of the partition window in milliseconds.
        until_ms: f64,
    },
    /// A background-traffic congestion window over `[at_ms, until_ms)`:
    /// the job runs on the fair network plane
    /// ([`crate::config::NetworkModel::Fair`]) and every link loses
    /// capacity for the window's duration (`link_extra_ms` degrades
    /// bandwidth under the fair plane — see
    /// [`crate::network::DEGRADE_REF_MS`]), emulating a bulk transfer
    /// competing for the same trunks. Survivable — the window ends and
    /// no tuples are destroyed, only delayed.
    Congestion {
        /// Start of the congestion window in milliseconds.
        at_ms: f64,
        /// End of the congestion window in milliseconds.
        until_ms: f64,
        /// Degradation knob: capacity shrinks by
        /// `DEGRADE_REF_MS / (DEGRADE_REF_MS + extra_ms)`.
        extra_ms: f64,
    },
    /// A flap storm on the host node: `flaps` crash/recover cycles
    /// starting at `first_at_ms` (see [`crate::faults::FaultPlan::flap_storm`]),
    /// stressing the control plane's trust hysteresis and churn limiter.
    /// Survivable — every outage heals.
    Flap {
        /// Simulation time of the first crash in milliseconds.
        first_at_ms: f64,
        /// Number of crash/recover cycles.
        flaps: u32,
        /// Length of each outage in milliseconds.
        down_ms: f64,
        /// Up time between cycles in milliseconds.
        up_ms: f64,
    },
    /// A control-plane outage composed with a data-plane crash: the host
    /// node crashes at `crash_at_ms` (healing at `heal_at_ms`) while
    /// Nimbus itself is down over
    /// `[nimbus_at_ms, nimbus_at_ms + nimbus_down_ms)`. The job runs
    /// with the control journal **enabled**, so the successor that
    /// reassumes after the window replays the journal and reconciles
    /// (see [`rstorm_core::RecoveryManager::reassume`]). Survivable —
    /// the journaled failover preserves detection liveness, so replay
    /// settles every root.
    NimbusOutage {
        /// Simulation time of the host crash in milliseconds.
        crash_at_ms: f64,
        /// Simulation time the victim heals in milliseconds.
        heal_at_ms: f64,
        /// Simulation time Nimbus goes down.
        nimbus_at_ms: f64,
        /// Length of the Nimbus outage in milliseconds.
        nimbus_down_ms: f64,
    },
}

impl FaultSpec {
    /// Stable label, the last segment of each group name.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::CrashRecover { .. } => "crash_recover",
            Self::CrashLasting { .. } => "crash_lasting",
            Self::Partition { .. } => "partition",
            Self::Congestion { .. } => "congestion",
            Self::Flap { .. } => "flap",
            Self::NimbusOutage { .. } => "nimbus_outage",
        }
    }

    /// True when the scenario is survivable — every settled root can ack
    /// given a sufficient replay budget, so `zero_loss_ratio == 1.0` is a
    /// correctness requirement rather than a hope.
    pub fn survivable(&self) -> bool {
        !matches!(self, Self::CrashLasting { .. })
    }
}

/// The scenario grid: the cross product of its four axes, plus the base
/// simulation config (each job overrides the seed).
#[derive(Debug)]
pub struct SweepGrid {
    /// The workload axis.
    pub cases: Vec<SweepCase>,
    /// The scheduler axis, as [`rstorm_core::schedulers::by_name`] names.
    pub schedulers: Vec<String>,
    /// The fault axis.
    pub faults: Vec<FaultSpec>,
    /// The seed axis.
    pub seeds: SeedRange,
    /// Base simulation parameters (`seed` is replaced per job).
    pub sim: SimConfig,
}

impl SweepGrid {
    /// Total number of jobs the grid expands to.
    pub fn job_count(&self) -> usize {
        self.cases.len() * self.schedulers.len() * self.faults.len() * self.seeds.len()
    }

    /// Number of (case, scheduler, fault) groups.
    pub fn group_count(&self) -> usize {
        self.cases.len() * self.schedulers.len() * self.faults.len()
    }

    /// Expands the grid into its job list. The nesting order — case,
    /// then scheduler, then fault, then seed — is the contract the
    /// aggregation layer builds on: all seeds of one group are
    /// consecutive, and `jobs[i].index == i`.
    pub fn expand(&self) -> Vec<SweepJob> {
        let mut jobs = Vec::with_capacity(self.job_count());
        for (case, _) in self.cases.iter().enumerate() {
            for scheduler in &self.schedulers {
                for fault in &self.faults {
                    for seed in self.seeds.iter() {
                        jobs.push(SweepJob {
                            index: jobs.len(),
                            case,
                            scheduler: scheduler.clone(),
                            fault: fault.clone(),
                            seed,
                        });
                    }
                }
            }
        }
        jobs
    }
}

/// One grid point: a fully specified scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepJob {
    /// Position in the expanded job list (and in [`SweepOutcome::rows`]).
    pub index: usize,
    /// Index into [`SweepGrid::cases`].
    pub case: usize,
    /// Scheduler name.
    pub scheduler: String,
    /// The fault scenario.
    pub fault: FaultSpec,
    /// The simulation seed.
    pub seed: u64,
}

/// The measurements of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The job that produced this row.
    pub job: SweepJob,
    /// Steady-state sink throughput (tuples per window, warm-up skipped).
    pub net_throughput: f64,
    /// Tuples of live roots completed at sinks.
    pub tuples_completed: u64,
    /// Tuples destroyed by injected crashes.
    pub tuples_lost: u64,
    /// [`SimReport::zero_loss_ratio`] of the run.
    pub zero_loss_ratio: f64,
    /// Crash-to-detection latency in ms; `-1.0` when nothing was (or
    /// could be) detected — healthy runs always carry the sentinel.
    pub time_to_detect_ms: f64,
    /// Crash-to-full-re-placement latency in ms; `-1.0` if never.
    pub time_to_recover_ms: f64,
}

// ---- execution ----------------------------------------------------------

/// Runs one job. Scheduling failures panic: grids are built from
/// feasible workloads, and a scheduler that cannot place a grid case is a
/// configuration error, not a data point.
fn run_job(grid: &SweepGrid, job: &SweepJob) -> SweepRow {
    let case = &grid.cases[job.case];
    let scheduler = schedulers::by_name(&job.scheduler)
        .unwrap_or_else(|| panic!("unknown scheduler `{}` in the sweep grid", job.scheduler));
    let sim_cfg = grid.sim.clone().with_seed(job.seed);
    let topo = case.topology.id().as_str().to_owned();

    let assignment = {
        let mut state = GlobalState::new(&case.cluster);
        scheduler
            .schedule(&case.topology, &case.cluster, &mut state)
            .unwrap_or_else(|e| {
                panic!(
                    "{} cannot place sweep case {}: {e}",
                    job.scheduler, case.name
                )
            })
    };

    let (report, detect, recover) = match job.fault {
        FaultSpec::Healthy => {
            let mut sim = Simulation::new(Arc::clone(&case.cluster), sim_cfg);
            sim.add_topology(&case.topology, &assignment);
            (sim.run(), -1.0, -1.0)
        }
        FaultSpec::CrashRecover {
            crash_at_ms,
            heal_at_ms,
        } => run_fault_job(
            case,
            &*scheduler,
            &assignment,
            sim_cfg,
            crash_at_ms,
            heal_at_ms,
        ),
        FaultSpec::CrashLasting { crash_at_ms } => {
            // A heal time past the horizon never fires.
            let never = grid.sim.sim_time_ms * 10.0;
            run_fault_job(case, &*scheduler, &assignment, sim_cfg, crash_at_ms, never)
        }
        FaultSpec::Partition { at_ms, until_ms } => {
            let rack = case
                .cluster
                .rack_of(&host_node(&assignment))
                .expect("assigned node belongs to a rack")
                .as_str()
                .to_owned();
            let plan = FaultPlan::new().partition_rack(at_ms, until_ms, rack);
            run_plan_job(case, &*scheduler, &plan, sim_cfg)
        }
        FaultSpec::Congestion {
            at_ms,
            until_ms,
            extra_ms,
        } => {
            // Congestion is only meaningful on the fair network plane:
            // under it `link_extra_ms` shrinks capacity instead of
            // padding latency, so the window behaves like competing
            // background traffic on every link.
            let fair_cfg = sim_cfg.with_network_model(crate::config::NetworkModel::Fair);
            let plan = FaultPlan::new().degrade_links(at_ms, until_ms, extra_ms);
            run_plan_job(case, &*scheduler, &plan, fair_cfg)
        }
        FaultSpec::Flap {
            first_at_ms,
            flaps,
            down_ms,
            up_ms,
        } => {
            let plan = FaultPlan::new().flap_storm(
                first_at_ms,
                host_node(&assignment),
                flaps,
                down_ms,
                up_ms,
            );
            run_plan_job(case, &*scheduler, &plan, sim_cfg)
        }
        FaultSpec::NimbusOutage {
            crash_at_ms,
            heal_at_ms,
            nimbus_at_ms,
            nimbus_down_ms,
        } => {
            let host = host_node(&assignment);
            let plan = FaultPlan::new()
                .crash_node(crash_at_ms, &host)
                .recover_node(heal_at_ms, &host)
                .nimbus_crash(nimbus_at_ms, nimbus_down_ms);
            let journaled = RecoveryConfig {
                journal: true,
                ..RecoveryConfig::default()
            };
            run_plan_job_with(case, &*scheduler, &plan, sim_cfg, &journaled)
        }
    };

    SweepRow {
        job: job.clone(),
        net_throughput: report.steady_throughput(&topo, WARMUP_WINDOWS),
        tuples_completed: report.totals.tuples_completed,
        tuples_lost: report.totals.tuples_lost,
        zero_loss_ratio: report.zero_loss_ratio(),
        time_to_detect_ms: detect,
        time_to_recover_ms: recover,
    }
}

/// The crash half of [`run_job`]: victim selection mirrors the chaos
/// smoke (the host of the first assigned task — crashing an idle machine
/// demonstrates nothing), then the two-plane chaos harness runs under the
/// job's scheduler.
fn run_fault_job(
    case: &SweepCase,
    scheduler: &dyn Scheduler,
    assignment: &rstorm_core::Assignment,
    sim_cfg: SimConfig,
    crash_at_ms: f64,
    heal_at_ms: f64,
) -> (SimReport, f64, f64) {
    let mut cfg = ChaosConfig::new(host_node(assignment), crash_at_ms, heal_at_ms);
    cfg.sim = sim_cfg;
    let out = run_crash_recover_with(&case.cluster, &case.topology, &cfg, scheduler);
    let obs = out.observations;
    (out.report, obs.time_to_detect_ms, obs.time_to_recover_ms)
}

/// The fault-plan half of [`run_job`] — the partition and flap specs run
/// through [`run_fault_plan_with`], the same two-plane harness the chaos
/// fuzzer drives, under default recovery knobs (matching
/// [`ChaosConfig::new`]).
fn run_plan_job(
    case: &SweepCase,
    scheduler: &dyn Scheduler,
    plan: &FaultPlan,
    sim_cfg: SimConfig,
) -> (SimReport, f64, f64) {
    run_plan_job_with(case, scheduler, plan, sim_cfg, &RecoveryConfig::default())
}

/// [`run_plan_job`] with explicit recovery knobs — the Nimbus-outage
/// spec needs the control journal on.
fn run_plan_job_with(
    case: &SweepCase,
    scheduler: &dyn Scheduler,
    plan: &FaultPlan,
    sim_cfg: SimConfig,
    recovery: &RecoveryConfig,
) -> (SimReport, f64, f64) {
    let out = run_fault_plan_with(
        &case.cluster,
        &case.topology,
        plan,
        &sim_cfg,
        recovery,
        scheduler,
    )
    .unwrap_or_else(|e| panic!("fault-plan job failed on sweep case {}: {e}", case.name));
    let obs = out.observations;
    (out.report, obs.time_to_detect_ms, obs.time_to_recover_ms)
}

/// Victim selection, shared by every fault spec: the host of the first
/// assigned task — crashing (or partitioning) an idle machine
/// demonstrates nothing.
fn host_node(assignment: &rstorm_core::Assignment) -> String {
    assignment
        .iter()
        .next()
        .expect("non-empty assignment")
        .1
        .node
        .as_str()
        .to_owned()
}

/// Everything a sweep produced: the per-job rows in job-index order, the
/// deterministic aggregation, and the (non-deterministic) timing
/// metadata, kept apart so the payload stays byte-identical across
/// worker counts.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-job results, `rows[i].job.index == i`.
    pub rows: Vec<SweepRow>,
    /// The aggregated distributions.
    pub summary: SweepSummary,
    /// Workers actually used.
    pub workers: usize,
    /// Wall-clock time of the fan-out.
    pub wall: Duration,
}

/// Runs every job of `grid` on `workers` threads (clamped to at least 1
/// and at most the job count).
///
/// Workers pull job indices from a shared atomic counter — deterministic
/// job order, no work stealing — and results are written back into their
/// job's slot, so rows, aggregation and [`SweepSummary::to_json`] are
/// identical for every worker count.
///
/// # Panics
///
/// Panics if the grid is empty or any job panics (unknown scheduler,
/// infeasible placement).
pub fn run_sweep(grid: &SweepGrid, workers: usize) -> SweepOutcome {
    let jobs = grid.expand();
    assert!(!jobs.is_empty(), "the sweep grid expands to no jobs");
    let workers = workers.clamp(1, jobs.len());
    let started = Instant::now();

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, SweepRow)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let jobs = &jobs;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let row = run_job(grid, job);
                if tx.send((i, row)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<SweepRow>> = jobs.iter().map(|_| None).collect();
    for (i, row) in rx {
        debug_assert!(slots[i].is_none(), "job {i} reported twice");
        slots[i] = Some(row);
    }
    let rows: Vec<SweepRow> = slots
        .into_iter()
        .map(|r| r.expect("every job completes exactly once"))
        .collect();
    let summary = aggregate(grid, &rows);
    SweepOutcome {
        rows,
        summary,
        workers,
        wall: started.elapsed(),
    }
}

// ---- aggregation --------------------------------------------------------

/// Number of tuples-lost histogram buckets: exact zero plus one decade
/// per bucket, the last open-ended.
pub const HIST_BUCKETS: usize = 8;

/// Human-readable bucket bounds, aligned with [`HIST_BUCKETS`].
pub const HIST_LABELS: [&str; HIST_BUCKETS] = [
    "0", "1-9", "10-99", "100-999", "1k-10k", "10k-100k", "100k-1M", ">=1M",
];

fn hist_bucket(lost: u64) -> usize {
    if lost == 0 {
        return 0;
    }
    let mut bucket = 1;
    let mut bound = 10;
    while bucket < HIST_BUCKETS - 1 && lost >= bound {
        bucket += 1;
        bound *= 10;
    }
    bucket
}

/// Nearest-rank percentile of pre-sorted `samples` (empty → `-1.0`).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return -1.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

/// p50/p90/p99 of a latency distribution; all `-1.0` when the group had
/// no samples (healthy groups never detect anything).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    fn of(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.total_cmp(b));
        Self {
            p50: percentile(&samples, 50.0),
            p90: percentile(&samples, 90.0),
            p99: percentile(&samples, 99.0),
        }
    }
}

/// The distribution of one (case, scheduler, fault) group over its seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGroup {
    /// `case/scheduler/fault` — the group's stable name.
    pub name: String,
    /// Whether the fault spec is survivable (see
    /// [`FaultSpec::survivable`]); gates the zero-loss pin.
    pub survivable: bool,
    /// Seeds aggregated into this group.
    pub seeds: usize,
    /// Crash-to-detect latency distribution (sentinel runs excluded).
    pub detect_ms: Percentiles,
    /// Crash-to-recover latency distribution (sentinel runs excluded).
    pub recover_ms: Percentiles,
    /// Worst per-run zero-loss ratio across the seeds.
    pub zero_loss_min: f64,
    /// Mean per-run zero-loss ratio across the seeds.
    pub zero_loss_mean: f64,
    /// Mean steady-state throughput (tuples per window).
    pub net_mean: f64,
    /// Standard deviation of steady-state throughput.
    pub net_stdev: f64,
    /// Tuples-lost histogram over [`HIST_LABELS`] buckets.
    pub lost_hist: [u64; HIST_BUCKETS],
}

impl SweepGroup {
    /// Renders the group as one JSON object line, the shape `bench_guard`
    /// scans: `zero_loss_ratio` appears only on survivable groups, where
    /// it is pinned to exactly 1.0. Floats use shortest-roundtrip
    /// formatting, so the line is byte-deterministic.
    pub fn json_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"seeds\": {}, \"survivable\": {}, \
             \"net_mean\": {:?}, \"net_stdev\": {:?}, \
             \"detect_p50_ms\": {:?}, \"detect_p90_ms\": {:?}, \"detect_p99_ms\": {:?}, \
             \"recover_p50_ms\": {:?}, \"recover_p90_ms\": {:?}, \"recover_p99_ms\": {:?}, \
             \"lost_hist\": [",
            self.name,
            self.seeds,
            self.survivable,
            self.net_mean,
            self.net_stdev,
            self.detect_ms.p50,
            self.detect_ms.p90,
            self.detect_ms.p99,
            self.recover_ms.p50,
            self.recover_ms.p90,
            self.recover_ms.p99,
        );
        for (i, n) in self.lost_hist.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{n}");
        }
        out.push(']');
        if self.survivable {
            let _ = write!(out, ", \"zero_loss_ratio\": {:?}", self.zero_loss_min);
        }
        out.push('}');
        out
    }
}

/// The deterministic aggregation of a sweep: group distributions in grid
/// order. This — not the wall-clock metadata — is the payload the
/// byte-identity guarantee covers.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Jobs aggregated.
    pub jobs: usize,
    /// The seed axis, echoed for provenance.
    pub seeds: SeedRange,
    /// Per-(case, scheduler, fault) distributions, in grid order.
    pub groups: Vec<SweepGroup>,
}

impl SweepSummary {
    /// Serializes the aggregation as deterministic JSON: fixed key order,
    /// shortest-roundtrip floats, groups in grid order. Two sweeps of the
    /// same grid produce the same string regardless of worker count.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"scenario sweep\",");
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(out, "  \"seeds\": \"{}\",", self.seeds);
        out.push_str("  \"groups\": [\n");
        for (i, g) in self.groups.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&g.json_line());
            out.push_str(if i + 1 < self.groups.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Aggregates per-job rows into per-group distributions. Relies on the
/// [`SweepGrid::expand`] contract: rows arrive in job-index order, so
/// each group's seeds form one consecutive chunk.
///
/// # Panics
///
/// Panics if `rows` does not match the grid's expansion.
pub fn aggregate(grid: &SweepGrid, rows: &[SweepRow]) -> SweepSummary {
    assert_eq!(rows.len(), grid.job_count(), "rows must cover the grid");
    let per_group = grid.seeds.len();
    let mut groups = Vec::with_capacity(grid.group_count());
    for chunk in rows.chunks(per_group) {
        let job = &chunk[0].job;
        let case = &grid.cases[job.case];
        debug_assert!(
            chunk.iter().all(|r| r.job.case == job.case
                && r.job.scheduler == job.scheduler
                && r.job.fault == job.fault),
            "a chunk spans a single group by the expansion contract"
        );
        let detect: Vec<f64> = chunk
            .iter()
            .map(|r| r.time_to_detect_ms)
            .filter(|&d| d >= 0.0)
            .collect();
        let recover: Vec<f64> = chunk
            .iter()
            .map(|r| r.time_to_recover_ms)
            .filter(|&d| d >= 0.0)
            .collect();
        let net = Summary::of(chunk.iter().map(|r| r.net_throughput));
        let zero = Summary::of(chunk.iter().map(|r| r.zero_loss_ratio));
        let mut lost_hist = [0u64; HIST_BUCKETS];
        for r in chunk {
            lost_hist[hist_bucket(r.tuples_lost)] += 1;
        }
        groups.push(SweepGroup {
            name: format!("{}/{}/{}", case.name, job.scheduler, job.fault.label()),
            survivable: job.fault.survivable(),
            seeds: chunk.len(),
            detect_ms: Percentiles::of(detect),
            recover_ms: Percentiles::of(recover),
            zero_loss_min: zero.min,
            zero_loss_mean: zero.mean,
            net_mean: net.mean,
            net_stdev: net.stddev,
            lost_hist,
        });
    }
    SweepSummary {
        jobs: rows.len(),
        seeds: grid.seeds,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_topology::{ExecutionProfile, TopologyBuilder};

    fn topology(name: &str) -> Topology {
        let mut b = TopologyBuilder::new(name);
        b.set_spout("src", 2)
            .set_profile(ExecutionProfile::network_bound(100))
            .set_cpu_load(25.0)
            .set_memory_load(256.0);
        b.set_bolt("sink", 2)
            .shuffle_grouping("src")
            .set_profile(ExecutionProfile::network_bound(100).into_sink())
            .set_cpu_load(25.0)
            .set_memory_load(256.0);
        b.build().unwrap()
    }

    fn cluster() -> Arc<Cluster> {
        Arc::new(
            ClusterBuilder::new()
                .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 4)
                .build()
                .unwrap(),
        )
    }

    fn tiny_grid() -> SweepGrid {
        SweepGrid {
            cases: vec![SweepCase {
                name: "tiny".to_owned(),
                topology: topology("tiny"),
                cluster: cluster(),
            }],
            schedulers: vec!["rstorm".to_owned(), "even".to_owned()],
            faults: vec![
                FaultSpec::Healthy,
                FaultSpec::CrashRecover {
                    crash_at_ms: 3_000.0,
                    heal_at_ms: 6_000.0,
                },
            ],
            seeds: SeedRange::new(0, 3).unwrap(),
            sim: SimConfig::quick()
                .with_sim_time_ms(10_000.0)
                .with_max_replays(4),
        }
    }

    #[test]
    fn seed_range_parses_and_rejects() {
        let r: SeedRange = "0..256".parse().unwrap();
        assert_eq!((r.start(), r.end(), r.len()), (0, 256, 256));
        assert_eq!(r.to_string(), "0..256");
        assert_eq!(" 3 .. 5 ".parse::<SeedRange>().unwrap().len(), 2);
        assert_eq!(
            "17".parse::<SeedRange>(),
            Err(ParseRangeError::MissingSeparator("17".to_owned()))
        );
        assert_eq!(
            "a..5".parse::<SeedRange>(),
            Err(ParseRangeError::InvalidBound("a".to_owned()))
        );
        assert_eq!(
            "0..=5".parse::<SeedRange>(),
            Err(ParseRangeError::InvalidBound("=5".to_owned()))
        );
        assert_eq!(
            "5..5".parse::<SeedRange>(),
            Err(ParseRangeError::EmptyOrInverted { start: 5, end: 5 })
        );
        assert_eq!(
            "9..2".parse::<SeedRange>(),
            Err(ParseRangeError::EmptyOrInverted { start: 9, end: 2 })
        );
        // The typed errors render readably.
        assert!(ParseRangeError::EmptyOrInverted { start: 9, end: 2 }
            .to_string()
            .contains("no seeds"));
    }

    #[test]
    fn expansion_covers_the_cross_product_without_duplicates() {
        let grid = tiny_grid();
        let jobs = grid.expand();
        assert_eq!(jobs.len(), grid.job_count());
        assert_eq!(jobs.len(), 2 * 2 * 3); // 1 case x 2 schedulers x 2 faults x 3 seeds
        let mut seen = std::collections::BTreeSet::new();
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i, "indices follow expansion order");
            assert!(
                seen.insert((job.case, job.scheduler.clone(), job.fault.label(), job.seed)),
                "duplicate grid point {job:?}"
            );
        }
        // Every axis value appears the expected number of times.
        assert_eq!(jobs.iter().filter(|j| j.seed == 1).count(), 4);
        assert_eq!(
            jobs.iter().filter(|j| j.scheduler == "even").count(),
            6,
            "each scheduler covers faults x seeds"
        );
        // Seeds of one group are consecutive (the aggregation contract).
        for chunk in jobs.chunks(grid.seeds.len()) {
            assert!(chunk
                .windows(2)
                .all(|w| w[0].fault == w[1].fault && w[0].scheduler == w[1].scheduler));
        }
    }

    #[test]
    fn sweep_output_is_byte_identical_across_worker_counts() {
        let grid = tiny_grid();
        let serial = run_sweep(&grid, 1);
        let parallel = run_sweep(&grid, 8);
        assert_eq!(serial.workers, 1);
        assert!(parallel.workers > 1, "the pool clamps to the job count");
        assert_eq!(serial.rows, parallel.rows, "row-level determinism");
        assert_eq!(
            serial.summary.to_json(),
            parallel.summary.to_json(),
            "the aggregated payload is byte-identical across worker counts"
        );
        // The payload has one group per (case, scheduler, fault) triple
        // and every job fed exactly one group.
        assert_eq!(serial.summary.groups.len(), grid.group_count());
        assert_eq!(serial.summary.jobs, grid.job_count());
        let counted: u64 = serial
            .summary
            .groups
            .iter()
            .map(|g| g.lost_hist.iter().sum::<u64>())
            .sum();
        assert_eq!(counted, grid.job_count() as u64);
        // Healthy groups carry the -1 sentinels; crash groups measured
        // real latencies and stayed lossless under replay.
        for g in &serial.summary.groups {
            assert!(g.survivable);
            assert_eq!(g.zero_loss_min, 1.0, "{}: lost settled roots", g.name);
            if g.name.ends_with("/healthy") {
                assert_eq!(g.detect_ms.p50, -1.0);
            } else {
                assert!(g.detect_ms.p50 > 0.0, "{}: no detection", g.name);
                assert!(g.recover_ms.p99 >= g.detect_ms.p50);
            }
        }
    }

    #[test]
    fn partition_and_flap_specs_sweep_clean() {
        // A grid over the two new mixed-fault specs: a rack partition
        // long enough to be detected, and a sub-miss-window flap storm.
        let grid = SweepGrid {
            cases: vec![SweepCase {
                name: "mixed".to_owned(),
                topology: topology("mixed"),
                cluster: cluster(),
            }],
            schedulers: vec!["rstorm".to_owned()],
            faults: vec![
                FaultSpec::Partition {
                    at_ms: 3_000.0,
                    until_ms: 8_000.0,
                },
                FaultSpec::Flap {
                    first_at_ms: 2_000.0,
                    flaps: 2,
                    down_ms: 1_500.0,
                    up_ms: 1_500.0,
                },
            ],
            seeds: SeedRange::new(0, 2).unwrap(),
            sim: SimConfig::quick()
                .with_sim_time_ms(10_000.0)
                .with_max_replays(4),
        };
        let serial = run_sweep(&grid, 1);
        let parallel = run_sweep(&grid, 4);
        assert_eq!(serial.rows, parallel.rows);
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        assert_eq!(serial.summary.groups.len(), 2);
        let partition = &serial.summary.groups[0];
        let flap = &serial.summary.groups[1];
        assert_eq!(partition.name, "mixed/rstorm/partition");
        assert_eq!(flap.name, "mixed/rstorm/flap");
        for g in &serial.summary.groups {
            assert!(g.survivable, "{}: both new specs heal", g.name);
            assert_eq!(g.zero_loss_min, 1.0, "{}: lost settled roots", g.name);
            assert!(
                g.json_line().contains("zero_loss_ratio"),
                "survivable groups expose the zero-loss pin"
            );
        }
        // The 5 s partition exceeds the 3-miss heartbeat window, so the
        // silenced rack is declared dead; each 1.5 s flap outage is far
        // below it, so the flap group keeps the -1 sentinel.
        assert!(partition.detect_ms.p50 > 0.0, "partition undetected");
        assert_eq!(
            flap.detect_ms.p50, -1.0,
            "sub-window flaps must not be declared"
        );
    }

    #[test]
    fn nimbus_outage_spec_survives_with_the_journal_on() {
        // A worker crashes while Nimbus itself is down; the journaled
        // successor must reassume, detect, and reschedule in time to
        // keep every seed lossless.
        let grid = SweepGrid {
            cases: vec![SweepCase {
                name: "ctrl".to_owned(),
                topology: topology("ctrl"),
                cluster: cluster(),
            }],
            schedulers: vec!["rstorm".to_owned()],
            faults: vec![FaultSpec::NimbusOutage {
                crash_at_ms: 4_000.0,
                heal_at_ms: 12_000.0,
                nimbus_at_ms: 3_000.0,
                nimbus_down_ms: 4_000.0,
            }],
            seeds: SeedRange::new(0, 2).unwrap(),
            sim: SimConfig::quick()
                .with_sim_time_ms(20_000.0)
                .with_max_replays(6),
        };
        let serial = run_sweep(&grid, 1);
        let parallel = run_sweep(&grid, 4);
        assert_eq!(serial.rows, parallel.rows);
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        assert_eq!(serial.summary.groups.len(), 1);
        let g = &serial.summary.groups[0];
        assert_eq!(g.name, "ctrl/rstorm/nimbus_outage");
        assert!(g.survivable, "the outage spec heals by construction");
        assert_eq!(g.zero_loss_min, 1.0, "journaled failover lost roots");
        // The crash lands inside the 3 s..7 s control outage, so
        // detection (measured from the 4 s crash) cannot finish within
        // the plain 3 s miss window — the successor only reassumes at
        // 7 s and restarts the silence clock from its seeded roster.
        assert!(
            g.detect_ms.p50 > 3_000.0,
            "detection after {} ms ignores the control outage",
            g.detect_ms.p50
        );
        assert!(g.recover_ms.p99 >= g.detect_ms.p50);
    }

    #[test]
    fn congestion_spec_runs_on_the_fair_plane_and_stays_lossless() {
        let grid = SweepGrid {
            cases: vec![SweepCase {
                name: "cong".to_owned(),
                topology: topology("cong"),
                cluster: cluster(),
            }],
            // `even` spreads the tasks, so transfers actually cross the
            // network and the capacity squeeze has something to squeeze.
            schedulers: vec!["even".to_owned()],
            faults: vec![
                FaultSpec::Healthy,
                FaultSpec::Congestion {
                    at_ms: 4_000.0,
                    until_ms: 16_000.0,
                    extra_ms: 400.0,
                },
            ],
            seeds: SeedRange::new(0, 2).unwrap(),
            sim: {
                let mut sim = SimConfig::quick()
                    .with_sim_time_ms(20_000.0)
                    .with_max_replays(4);
                sim.window_ms = 2_000.0;
                sim
            },
        };
        let serial = run_sweep(&grid, 1);
        let parallel = run_sweep(&grid, 4);
        assert_eq!(serial.summary.to_json(), parallel.summary.to_json());
        let healthy = &serial.summary.groups[0];
        let congested = &serial.summary.groups[1];
        assert_eq!(congested.name, "cong/even/congestion");
        assert!(congested.survivable, "background traffic destroys nothing");
        assert_eq!(congested.zero_loss_min, 1.0, "congestion lost tuples");
        assert_eq!(
            congested.detect_ms.p50, -1.0,
            "no node dies, so nothing is detected"
        );
        assert!(congested.net_mean > 0.0, "traffic still flows");
        assert!(
            congested.net_mean < healthy.net_mean,
            "a 12 s capacity squeeze must cost throughput: {} vs {}",
            congested.net_mean,
            healthy.net_mean
        );
    }

    #[test]
    fn histogram_buckets_are_decades() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(9), 1);
        assert_eq!(hist_bucket(10), 2);
        assert_eq!(hist_bucket(999), 3);
        assert_eq!(hist_bucket(1_000_000), 7);
        assert_eq!(hist_bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let p = Percentiles::of(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(p.p50, 3.0, "rank round(0.5 * 3) = 2");
        assert_eq!(p.p90, 4.0);
        assert_eq!(p.p99, 4.0);
        let none = Percentiles::of(Vec::new());
        assert_eq!((none.p50, none.p90, none.p99), (-1.0, -1.0, -1.0));
    }

    #[test]
    fn group_lines_expose_zero_loss_only_when_survivable() {
        let mut g = SweepGroup {
            name: "c/s/crash_recover".to_owned(),
            survivable: true,
            seeds: 4,
            detect_ms: Percentiles {
                p50: 2_000.0,
                p90: 2_000.0,
                p99: 2_000.0,
            },
            recover_ms: Percentiles {
                p50: 2_000.0,
                p90: 2_000.0,
                p99: 2_000.0,
            },
            zero_loss_min: 1.0,
            zero_loss_mean: 1.0,
            net_mean: 1234.5,
            net_stdev: 6.7,
            lost_hist: [0, 4, 0, 0, 0, 0, 0, 0],
        };
        let line = g.json_line();
        assert!(line.contains("\"zero_loss_ratio\": 1.0"), "{line}");
        assert!(line.contains("\"lost_hist\": [0, 4, 0, 0, 0, 0, 0, 0]"));
        g.survivable = false;
        assert!(!g.json_line().contains("zero_loss_ratio"));
    }
}
