//! Flattening scheduled topologies into the simulator's task table, and
//! interning every entity the hot path touches into dense integer ids.
//!
//! All naming happens here, once, at build time: tasks, components,
//! topologies and nodes become dense indices, and per producer task ×
//! output stream the full routing decision — which consumer tasks can
//! receive a batch, over which link path, at which fixed latency — is
//! resolved into a flat [`RoutingTable`]. The steady-state event loop in
//! [`crate::sim`] then never hashes a `String`, never compares a
//! `WorkerSlot` and never re-derives a grouping; it only indexes arrays.

use rstorm_cluster::{Cluster, NetworkCosts, PlacementRelation, WorkerSlot};
use rstorm_core::Assignment;
use rstorm_topology::{StreamGrouping, Topology};
use std::collections::HashMap;

/// One downstream subscription of a component, resolved to global
/// simulator task indices (reference-engine routing: the grouping is
/// re-interpreted per emission).
#[derive(Debug, Clone)]
pub(crate) struct ConsumerGroup {
    pub grouping: StreamGrouping,
    /// Global indices of the consuming component's tasks, in task order.
    pub targets: Vec<usize>,
}

/// Sentinel for "this task's component is not a sink".
pub(crate) const NO_SINK: u32 = u32::MAX;

/// A task as the simulator sees it: placement, profile and routing table.
#[derive(Debug, Clone)]
pub(crate) struct SimTaskSpec {
    pub topology: String,
    pub component: String,
    pub slot: WorkerSlot,
    pub node_idx: usize,
    pub rack_idx: usize,
    /// Dense id of the owning topology (order of `add_topology` calls).
    pub topo_id: u32,
    /// Dense throughput-counter index if this task's component is a
    /// declared sink, [`NO_SINK`] otherwise.
    pub sink_ctr: u32,
    /// Node-local index into the node's [`crate::servers::DenseCpuServer`].
    pub cpu_slot: u32,
    pub is_spout: bool,
    pub is_sink: bool,
    pub work_ms_per_tuple: f64,
    pub emit_factor: f64,
    pub tuple_bytes: u32,
    pub max_rate_tuples_per_sec: Option<f64>,
    pub max_spout_pending: Option<u32>,
    /// Declared per-task memory, needed to re-derive a node's memory
    /// demand (and thus its thrash state) when the task migrates.
    pub memory_mb: f64,
    pub consumers: Vec<ConsumerGroup>,
}

/// How a precomputed route group selects targets per emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GroupKind {
    /// Draw one route uniformly from the group's range (shuffle, fields,
    /// and local-or-shuffle over its precomputed pool).
    Pick,
    /// Send over every route in the range (all-grouping; global grouping
    /// is stored as a single-route range).
    All,
}

/// The physical link class of a precomputed route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LinkKind {
    /// Same worker or same node: no NIC serialization, latency only.
    Local,
    /// Same rack: producer egress → consumer ingress.
    SameRack,
    /// Across racks: egress → shared uplink → ingress.
    InterRack,
}

/// One fully resolved producer-task → consumer-task route.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Route {
    /// Global index of the receiving task.
    pub to: u32,
    /// The receiver's node (ingress link server index).
    pub to_node: u32,
    pub kind: LinkKind,
    /// Fixed propagation latency of this route's placement relation.
    pub latency_ms: f64,
}

/// A contiguous range of routes with a selection rule.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RouteGroup {
    pub kind: GroupKind,
    pub start: u32,
    pub len: u32,
}

/// Flat per-task routing: `task_groups[task]` is a range into `groups`,
/// each group a range into `routes`.
#[derive(Debug, Default)]
pub(crate) struct RoutingTable {
    pub groups: Vec<RouteGroup>,
    pub routes: Vec<Route>,
    /// Per global task: (start, len) into `groups`.
    pub task_groups: Vec<(u32, u32)>,
}

/// Index structures over the cluster, shared by all topologies added to a
/// simulation.
#[derive(Debug)]
pub(crate) struct ClusterIndex {
    pub node_of: HashMap<String, usize>,
    pub rack_of_node: Vec<usize>,
    pub cores: Vec<f64>,
    pub memory_mb: Vec<f64>,
    pub node_names: Vec<String>,
}

impl ClusterIndex {
    pub fn new(cluster: &Cluster) -> Self {
        let mut rack_index: HashMap<&str, usize> = HashMap::new();
        for (i, r) in cluster.racks().iter().enumerate() {
            rack_index.insert(r.as_str(), i);
        }
        let mut node_of = HashMap::new();
        let mut rack_of_node = Vec::new();
        let mut cores = Vec::new();
        let mut memory_mb = Vec::new();
        let mut node_names = Vec::new();
        for (i, n) in cluster.nodes().iter().enumerate() {
            node_of.insert(n.id().as_str().to_owned(), i);
            rack_of_node.push(rack_index[n.rack().as_str()]);
            cores.push((n.capacity().cpu_points / 100.0).max(0.01));
            memory_mb.push(n.capacity().memory_mb);
            node_names.push(n.id().as_str().to_owned());
        }
        Self {
            node_of,
            rack_of_node,
            cores,
            memory_mb,
            node_names,
        }
    }
}

/// Everything `add_topology` accumulates: the flattened task table plus
/// the dense-id side tables the fast engine runs on.
#[derive(Debug)]
pub(crate) struct SimBuild {
    pub specs: Vec<SimTaskSpec>,
    pub routing: RoutingTable,
    /// Producer task of each route, parallel to `routing.routes` — the
    /// reverse edge [`Self::patch_routing`] needs to re-derive a single
    /// route without replaying its whole group.
    pub route_from: Vec<u32>,
    /// Per global task: indices into `routing.routes` of every route that
    /// *targets* the task, so a moved consumer's inbound rows are
    /// reachable in O(degree) instead of a full-table scan.
    pub incoming: Vec<Vec<u32>>,
    /// Per global task: true when the task produces or can receive a
    /// local-or-shuffle group. Moving such a task can change the group's
    /// precomputed preference *pool* (and with it the table's shape), so
    /// [`Self::patch_routing`] refuses and the caller falls back to a
    /// full rebuild.
    pub los_member: Vec<bool>,
    pub node_mem_demand: Vec<f64>,
    /// Per node: global ids of the tasks placed on it, in placement
    /// order — the `DenseCpuServer` slot layout.
    pub node_tasks: Vec<Vec<usize>>,
    /// Dense topology id → name (report boundary only).
    pub topo_names: Vec<String>,
    /// Per topology: its sinks' counter indices, in sorted component-name
    /// order (the reference `StatisticServer` iterates sinks through a
    /// `BTreeSet<String>`, so the float summation order must match).
    pub sink_ctrs_by_topo: Vec<Vec<u32>>,
    /// Total number of sink throughput counters allocated so far.
    pub sink_counters: usize,
}

impl SimBuild {
    pub fn new(node_count: usize) -> Self {
        Self {
            specs: Vec::new(),
            routing: RoutingTable::default(),
            route_from: Vec::new(),
            incoming: Vec::new(),
            los_member: Vec::new(),
            node_mem_demand: vec![0.0; node_count],
            node_tasks: vec![Vec::new(); node_count],
            topo_names: Vec::new(),
            sink_ctrs_by_topo: Vec::new(),
            sink_counters: 0,
        }
    }

    /// Appends every task of `topology` (placed per `assignment`),
    /// resolving consumer routing to global indices and precomputing the
    /// fast path's route table, and accumulates each node's memory demand.
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not cover every task of the topology
    /// or references a node missing from the cluster — schedulers in this
    /// workspace always produce complete assignments; use
    /// `rstorm_core::verify_plan` to diagnose foreign ones.
    pub fn append_topology(
        &mut self,
        index: &ClusterIndex,
        costs: &NetworkCosts,
        topology: &Topology,
        assignment: &Assignment,
    ) {
        let task_set = topology.task_set();
        let base = self.specs.len();
        let topo_id = self.topo_names.len() as u32;
        self.topo_names.push(topology.id().as_str().to_owned());

        // Intern this topology's sinks into dense counter ids, in sorted
        // name order (the `BTreeSet` order the reference stats use).
        let mut sink_names: Vec<&str> = topology.sinks().map(|c| c.id().as_str()).collect();
        sink_names.sort_unstable();
        let ctr_base = self.sink_counters as u32;
        let ctr_of: HashMap<&str, u32> = sink_names
            .iter()
            .enumerate()
            .map(|(k, &s)| (s, ctr_base + k as u32))
            .collect();
        self.sink_ctrs_by_topo
            .push((0..sink_names.len()).map(|k| ctr_base + k as u32).collect());
        self.sink_counters += sink_names.len();

        // First pass: create specs without consumer routing.
        for task in task_set.tasks() {
            let component = topology
                .component(task.component.as_str())
                .expect("task set components exist in the topology");
            let slot = assignment
                .slot_of(task.id)
                .unwrap_or_else(|| {
                    panic!(
                        "assignment for `{}` does not place {}",
                        topology.id(),
                        task.id
                    )
                })
                .clone();
            let node_idx = *index
                .node_of
                .get(slot.node.as_str())
                .unwrap_or_else(|| panic!("assignment references unknown node `{}`", slot.node));
            self.node_mem_demand[node_idx] += component.resources().memory_mb;
            let cpu_slot = self.node_tasks[node_idx].len() as u32;
            self.node_tasks[node_idx].push(base + task.id.index());
            let profile = component.profile();
            let sink_ctr = ctr_of
                .get(task.component.as_str())
                .copied()
                .unwrap_or(NO_SINK);
            self.specs.push(SimTaskSpec {
                topology: topology.id().as_str().to_owned(),
                component: task.component.as_str().to_owned(),
                slot,
                node_idx,
                rack_idx: index.rack_of_node[node_idx],
                topo_id,
                sink_ctr,
                cpu_slot,
                is_spout: component.is_spout(),
                is_sink: sink_ctr != NO_SINK,
                work_ms_per_tuple: profile.work_ms_per_tuple,
                emit_factor: profile.emit_factor,
                tuple_bytes: profile.tuple_bytes,
                max_rate_tuples_per_sec: profile.max_rate_tuples_per_sec,
                max_spout_pending: topology.max_spout_pending(),
                memory_mb: component.resources().memory_mb,
                consumers: Vec::new(),
            });
        }

        // Second pass: resolve each component's consumers to global
        // indices, and freeze every routing decision that does not depend
        // on the run — target sets per grouping (including the
        // local-or-shuffle preference pool) and the link path plus
        // latency per (producer, consumer) pair.
        self.incoming.resize(self.specs.len(), Vec::new());
        self.los_member.resize(self.specs.len(), false);
        let global_of: HashMap<&str, Vec<usize>> = task_set
            .by_component()
            .map(|(c, ids)| {
                (
                    c.as_str(),
                    ids.iter().map(|t| base + t.index()).collect::<Vec<_>>(),
                )
            })
            .collect();
        for task in task_set.tasks() {
            let from = base + task.id.index();
            let groups_start = self.routing.groups.len() as u32;
            let groups: Vec<ConsumerGroup> = topology
                .consumers(task.component.as_str())
                .iter()
                .map(|(consumer, decl)| ConsumerGroup {
                    grouping: decl.grouping.clone(),
                    targets: global_of[consumer.as_str()].clone(),
                })
                .collect();
            for group in &groups {
                self.push_route_group(costs, from, group);
            }
            let len = self.routing.groups.len() as u32 - groups_start;
            debug_assert_eq!(self.routing.task_groups.len(), from);
            self.routing.task_groups.push((groups_start, len));
            self.specs[from].consumers = groups;
        }
    }

    /// Recomputes the whole routing table from the current task specs.
    ///
    /// Live migration moves tasks between worker slots, which invalidates
    /// every placement-derived routing decision: link kinds, per-route
    /// latencies and the local-or-shuffle preference pools. The consumer
    /// groups (grouping + target task sets) are placement-independent, so
    /// replaying them through the same [`Self::push_route_group`] logic
    /// reproduces exactly the table a fresh build of the new placement
    /// would produce — tasks that did not move get bit-identical routes.
    ///
    /// The existing buffers are reused (`clear()` + refill) rather than
    /// reallocated: the table's capacity is already exactly right from
    /// the previous build, so repeated rebuilds stop churning the
    /// allocator.
    pub fn rebuild_routing(&mut self, costs: &NetworkCosts) {
        self.routing.groups.clear();
        self.routing.routes.clear();
        self.routing.task_groups.clear();
        self.route_from.clear();
        for list in &mut self.incoming {
            list.clear();
        }
        self.los_member.fill(false);
        for from in 0..self.specs.len() {
            let groups_start = self.routing.groups.len() as u32;
            let groups = std::mem::take(&mut self.specs[from].consumers);
            for group in &groups {
                self.push_route_group(costs, from, group);
            }
            self.specs[from].consumers = groups;
            let len = self.routing.groups.len() as u32 - groups_start;
            self.routing.task_groups.push((groups_start, len));
        }
    }

    /// Patches the routing table in place after the tasks in `moved`
    /// changed placement, recomputing only the route rows whose producer
    /// or consumer moved — O(moved · degree) instead of the full
    /// O(tasks · fan-out) rebuild.
    ///
    /// Sound because for shuffle, fields, all and global groupings the
    /// *shape* of the table (group ranges, target order, route count) is
    /// placement-independent: a from-scratch rebuild after the same moves
    /// would produce the identical layout with only the affected rows'
    /// link kind, latency and destination node changed — exactly the rows
    /// patched here. Re-deriving a row is idempotent, so a route whose
    /// two endpoints both moved is simply recomputed twice.
    ///
    /// Returns `false` — leaving the table untouched — when any moved
    /// task participates in a local-or-shuffle group: its precomputed
    /// preference pool (and with it the table's shape) depends on
    /// placement, so the caller must fall back to
    /// [`Self::rebuild_routing`].
    pub fn patch_routing(&mut self, costs: &NetworkCosts, moved: &[usize]) -> bool {
        if moved.iter().any(|&t| self.los_member[t]) {
            return false;
        }
        for &t in moved {
            // Rows the moved task produces: every route of its groups.
            let (gs, gl) = self.routing.task_groups[t];
            for g in gs..gs + gl {
                let group = self.routing.groups[g as usize];
                for r in group.start..group.start + group.len {
                    self.repatch_route(costs, t, r as usize);
                }
            }
            // Rows the moved task consumes: every route targeting it.
            for k in 0..self.incoming[t].len() {
                let r = self.incoming[t][k] as usize;
                let from = self.route_from[r] as usize;
                self.repatch_route(costs, from, r);
            }
        }
        true
    }

    /// Recomputes one route's placement-derived fields from the current
    /// specs of its (unchanged) endpoints.
    fn repatch_route(&mut self, costs: &NetworkCosts, from: usize, r: usize) {
        let to = self.routing.routes[r].to as usize;
        let relation = relation_of(&self.specs[from], &self.specs[to]);
        let link = match relation {
            PlacementRelation::SameWorker | PlacementRelation::SameNode => LinkKind::Local,
            PlacementRelation::SameRack => LinkKind::SameRack,
            PlacementRelation::InterRack => LinkKind::InterRack,
        };
        self.routing.routes[r] = Route {
            to: to as u32,
            to_node: self.specs[to].node_idx as u32,
            kind: link,
            latency_ms: costs.latency_ms(relation),
        };
    }

    fn push_route_group(&mut self, costs: &NetworkCosts, from: usize, group: &ConsumerGroup) {
        let targets = &group.targets;
        debug_assert!(!targets.is_empty(), "validated topologies have tasks");
        if matches!(group.grouping, StreamGrouping::LocalOrShuffle) {
            self.los_member[from] = true;
            for &t in targets {
                self.los_member[t] = true;
            }
        }
        let start = self.routing.routes.len() as u32;
        let (kind, chosen): (GroupKind, Vec<usize>) = match &group.grouping {
            // Fields grouping with uniformly distributed keys is
            // statistically identical to shuffle at this granularity, so
            // both pick uniformly over the full target set.
            StreamGrouping::Shuffle | StreamGrouping::Fields(_) => {
                (GroupKind::Pick, targets.clone())
            }
            StreamGrouping::All => (GroupKind::All, targets.clone()),
            StreamGrouping::Global => (GroupKind::All, vec![targets[0]]),
            StreamGrouping::LocalOrShuffle => {
                let from_slot = &self.specs[from].slot;
                let local: Vec<usize> = targets
                    .iter()
                    .copied()
                    .filter(|&t| self.specs[t].slot == *from_slot)
                    .collect();
                let pool = if local.is_empty() {
                    targets.clone()
                } else {
                    local
                };
                (GroupKind::Pick, pool)
            }
        };
        for to in chosen {
            let relation = relation_of(&self.specs[from], &self.specs[to]);
            let link = match relation {
                PlacementRelation::SameWorker | PlacementRelation::SameNode => LinkKind::Local,
                PlacementRelation::SameRack => LinkKind::SameRack,
                PlacementRelation::InterRack => LinkKind::InterRack,
            };
            self.incoming[to].push(self.routing.routes.len() as u32);
            self.route_from.push(from as u32);
            self.routing.routes.push(Route {
                to: to as u32,
                to_node: self.specs[to].node_idx as u32,
                kind: link,
                latency_ms: costs.latency_ms(relation),
            });
        }
        self.routing.groups.push(RouteGroup {
            kind,
            start,
            len: self.routing.routes.len() as u32 - start,
        });
    }
}

pub(crate) fn relation_of(a: &SimTaskSpec, b: &SimTaskSpec) -> PlacementRelation {
    if a.slot == b.slot {
        PlacementRelation::SameWorker
    } else if a.node_idx == b.node_idx {
        PlacementRelation::SameNode
    } else if a.rack_idx == b.rack_idx {
        PlacementRelation::SameRack
    } else {
        PlacementRelation::InterRack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_core::{GlobalState, RStormScheduler, Scheduler};
    use rstorm_topology::TopologyBuilder;

    fn setup() -> (Cluster, Topology, Assignment) {
        let cluster = ClusterBuilder::new()
            .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap();
        let mut b = TopologyBuilder::new("t");
        b.set_spout("s", 2).set_memory_load(100.0);
        b.set_bolt("m", 3)
            .shuffle_grouping("s")
            .set_memory_load(100.0);
        b.set_bolt("k", 1)
            .global_grouping("m")
            .set_memory_load(100.0);
        let topology = b.build().unwrap();
        let mut state = GlobalState::new(&cluster);
        let assignment = RStormScheduler::new()
            .schedule(&topology, &cluster, &mut state)
            .unwrap();
        (cluster, topology, assignment)
    }

    fn build(cluster: &Cluster, topology: &Topology, assignment: &Assignment) -> SimBuild {
        let idx = ClusterIndex::new(cluster);
        let mut b = SimBuild::new(cluster.nodes().len());
        b.append_topology(&idx, cluster.costs(), topology, assignment);
        b
    }

    #[test]
    fn index_covers_all_nodes() {
        let (cluster, _, _) = setup();
        let idx = ClusterIndex::new(&cluster);
        assert_eq!(idx.node_of.len(), 6);
        assert_eq!(idx.cores.len(), 6);
        assert_eq!(idx.cores[0], 1.0);
        assert_eq!(idx.memory_mb[0], 2048.0);
        // Rack indices partition the nodes 3/3.
        assert_eq!(idx.rack_of_node.iter().filter(|&&r| r == 0).count(), 3);
        assert_eq!(idx.rack_of_node.iter().filter(|&&r| r == 1).count(), 3);
    }

    #[test]
    fn tasks_flattened_with_routing() {
        let (cluster, topology, assignment) = setup();
        let b = build(&cluster, &topology, &assignment);
        assert_eq!(b.specs.len(), 6);
        // Spout tasks route to the middle bolt's three tasks.
        let spout = &b.specs[0];
        assert!(spout.is_spout);
        assert!(!spout.is_sink);
        assert_eq!(spout.consumers.len(), 1);
        assert_eq!(spout.consumers[0].targets, vec![2, 3, 4]);
        // Middle bolt routes to the sink.
        assert_eq!(b.specs[2].consumers[0].targets, vec![5]);
        assert_eq!(b.specs[2].consumers[0].grouping, StreamGrouping::Global);
        // The sink has no consumers and is flagged.
        assert!(b.specs[5].is_sink);
        assert!(b.specs[5].consumers.is_empty());
        // Memory demand accumulated: 6 tasks × 100 MB.
        assert!((b.node_mem_demand.iter().sum::<f64>() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn routing_table_mirrors_consumer_groups() {
        let (cluster, topology, assignment) = setup();
        let b = build(&cluster, &topology, &assignment);
        assert_eq!(b.routing.task_groups.len(), 6);
        // Spout task 0: one shuffle group over the three middle tasks.
        let (gs, gl) = b.routing.task_groups[0];
        assert_eq!(gl, 1);
        let g = b.routing.groups[gs as usize];
        assert_eq!(g.kind, GroupKind::Pick);
        assert_eq!(g.len, 3);
        let tos: Vec<u32> = (g.start..g.start + g.len)
            .map(|r| b.routing.routes[r as usize].to)
            .collect();
        assert_eq!(tos, vec![2, 3, 4]);
        // Middle task 2: global grouping stored as a single-route All.
        let (gs2, gl2) = b.routing.task_groups[2];
        assert_eq!(gl2, 1);
        let g2 = b.routing.groups[gs2 as usize];
        assert_eq!(g2.kind, GroupKind::All);
        assert_eq!(g2.len, 1);
        assert_eq!(b.routing.routes[g2.start as usize].to, 5);
        // The sink has no groups.
        assert_eq!(b.routing.task_groups[5].1, 0);
        // Every route's link kind is consistent with its latency: a
        // local route costs at most a same-rack one, etc.
        let costs = cluster.costs();
        for r in &b.routing.routes {
            let expected = match r.kind {
                LinkKind::Local => {
                    assert!(
                        r.latency_ms <= costs.latency_ms(PlacementRelation::SameNode),
                        "local latency out of range"
                    );
                    continue;
                }
                LinkKind::SameRack => costs.latency_ms(PlacementRelation::SameRack),
                LinkKind::InterRack => costs.latency_ms(PlacementRelation::InterRack),
            };
            assert_eq!(r.latency_ms, expected);
        }
    }

    #[test]
    fn dense_ids_assigned() {
        let (cluster, topology, assignment) = setup();
        let b = build(&cluster, &topology, &assignment);
        assert_eq!(b.topo_names, vec!["t".to_owned()]);
        // One sink component ("k") → one counter, owned by topology 0.
        assert_eq!(b.sink_counters, 1);
        assert_eq!(b.sink_ctrs_by_topo, vec![vec![0]]);
        assert_eq!(b.specs[5].sink_ctr, 0);
        assert_eq!(b.specs[0].sink_ctr, NO_SINK);
        // cpu slots are dense per node, in placement order.
        for (node, tasks) in b.node_tasks.iter().enumerate() {
            for (slot, &gid) in tasks.iter().enumerate() {
                assert_eq!(b.specs[gid].node_idx, node);
                assert_eq!(b.specs[gid].cpu_slot as usize, slot);
            }
        }
    }

    #[test]
    fn second_topology_gets_offset_indices() {
        let (cluster, topology, assignment) = setup();
        let idx = ClusterIndex::new(&cluster);
        let mut b = SimBuild::new(cluster.nodes().len());
        b.append_topology(&idx, cluster.costs(), &topology, &assignment);
        b.append_topology(&idx, cluster.costs(), &topology, &assignment);
        assert_eq!(b.specs.len(), 12);
        // Second copy's spout routes into the second copy's bolts.
        assert_eq!(b.specs[6].consumers[0].targets, vec![8, 9, 10]);
        let (gs, _) = b.routing.task_groups[6];
        let g = b.routing.groups[gs as usize];
        let tos: Vec<u32> = (g.start..g.start + g.len)
            .map(|r| b.routing.routes[r as usize].to)
            .collect();
        assert_eq!(tos, vec![8, 9, 10]);
        // Sink counters are disjoint per topology.
        assert_eq!(b.sink_ctrs_by_topo, vec![vec![0], vec![1]]);
        assert_eq!(b.specs[11].sink_ctr, 1);
    }

    #[test]
    fn rebuild_without_moves_reproduces_the_table() {
        let (cluster, topology, assignment) = setup();
        let mut b = build(&cluster, &topology, &assignment);
        let before = format!("{:?}", b.routing);
        b.rebuild_routing(cluster.costs());
        assert_eq!(before, format!("{:?}", b.routing));
    }

    #[test]
    fn rebuild_tracks_a_moved_task() {
        let (cluster, topology, assignment) = setup();
        let mut b = build(&cluster, &topology, &assignment);
        let idx = ClusterIndex::new(&cluster);
        // Move the sink (global task 5) to a node hosting nothing else.
        let dest = (0..idx.node_names.len())
            .find(|&n| b.specs.iter().all(|s| s.node_idx != n))
            .expect("6 nodes, 6 colocated tasks: some node is free");
        b.specs[5].node_idx = dest;
        b.specs[5].rack_idx = idx.rack_of_node[dest];
        b.specs[5].slot = rstorm_cluster::WorkerSlot::new(idx.node_names[dest].as_str(), 9000);
        b.rebuild_routing(cluster.costs());
        // The middle bolt's single global route now points at the new node.
        let (gs, _) = b.routing.task_groups[2];
        let g = b.routing.groups[gs as usize];
        let r = b.routing.routes[g.start as usize];
        assert_eq!(r.to, 5);
        assert_eq!(r.to_node, dest as u32);
        assert_ne!(r.kind, LinkKind::Local, "the sink left its producers");
    }

    #[test]
    #[should_panic(expected = "does not place")]
    fn incomplete_assignment_panics() {
        let (cluster, topology, _) = setup();
        let empty = Assignment::new("t", Default::default());
        build(&cluster, &topology, &empty);
    }

    /// Everything the patch path may touch, in one comparable blob: the
    /// routing table plus the side indexes that must stay in lockstep.
    fn fingerprint(b: &SimBuild) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}",
            b.routing, b.route_from, b.incoming, b.los_member
        )
    }

    /// Applies the placement part of a migration directly to the specs,
    /// the way `apply_migration` does before refreshing the routes.
    fn relocate(b: &mut SimBuild, idx: &ClusterIndex, task: usize, dest: usize) {
        b.specs[task].node_idx = dest;
        b.specs[task].rack_idx = idx.rack_of_node[dest];
        b.specs[task].slot = rstorm_cluster::WorkerSlot::new(idx.node_names[dest].as_str(), 9000);
    }

    #[test]
    fn patch_with_no_moves_is_a_noop() {
        let (cluster, topology, assignment) = setup();
        let mut b = build(&cluster, &topology, &assignment);
        let before = fingerprint(&b);
        assert!(b.patch_routing(cluster.costs(), &[]));
        assert_eq!(before, fingerprint(&b));
    }

    #[test]
    fn patch_matches_full_rebuild_for_moved_tasks() {
        let (cluster, topology, assignment) = setup();
        let idx = ClusterIndex::new(&cluster);
        let mut patched = build(&cluster, &topology, &assignment);
        let mut rebuilt = build(&cluster, &topology, &assignment);
        // Move a producer (spout task 0) and a consumer (sink task 5) to
        // a free node — exercises both the outgoing and incoming rows,
        // including a task that is both endpoints of a crossing route.
        let dest = (0..idx.node_names.len())
            .find(|&n| patched.specs.iter().all(|s| s.node_idx != n))
            .expect("6 nodes, 6 colocated tasks: some node is free");
        for b in [&mut patched, &mut rebuilt] {
            relocate(b, &idx, 0, dest);
            relocate(b, &idx, 5, dest);
        }
        assert!(patched.patch_routing(cluster.costs(), &[0, 5]));
        rebuilt.rebuild_routing(cluster.costs());
        assert_eq!(fingerprint(&patched), fingerprint(&rebuilt));
        // The move is visible: spout 0's routes now leave `dest`.
        let (gs, _) = patched.routing.task_groups[0];
        let g = patched.routing.groups[gs as usize];
        assert_ne!(
            patched.routing.routes[g.start as usize].kind,
            LinkKind::Local,
            "the spout left its consumers"
        );
    }

    #[test]
    fn local_or_shuffle_members_force_full_rebuild() {
        let cluster = ClusterBuilder::new()
            .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap();
        let mut tb = TopologyBuilder::new("los");
        tb.set_spout("s", 2).set_memory_load(100.0);
        tb.set_bolt("m", 3)
            .shuffle_grouping("s")
            .set_memory_load(100.0);
        tb.set_bolt("k", 2)
            .local_or_shuffle_grouping("m")
            .set_memory_load(100.0);
        let topology = tb.build().unwrap();
        let mut state = GlobalState::new(&cluster);
        let assignment = RStormScheduler::new()
            .schedule(&topology, &cluster, &mut state)
            .unwrap();
        let b = build(&cluster, &topology, &assignment);
        // Producers (m: 2..5) and targets (k: 5..7) of the LoS group are
        // flagged; the spout tasks are not.
        assert!(!b.los_member[0] && !b.los_member[1]);
        assert!((2..7).all(|t| b.los_member[t]));
        // A LoS member declines the patch and leaves the table untouched…
        let mut declined = build(&cluster, &topology, &assignment);
        let before = fingerprint(&declined);
        assert!(!declined.patch_routing(cluster.costs(), &[0, 3]));
        assert_eq!(before, fingerprint(&declined));
        // …while a move of only the (non-member) spout still patches and
        // matches the full rebuild.
        let idx = ClusterIndex::new(&cluster);
        let mut patched = build(&cluster, &topology, &assignment);
        let mut rebuilt = build(&cluster, &topology, &assignment);
        let dest = (patched.specs[0].node_idx + 1) % idx.node_names.len();
        relocate(&mut patched, &idx, 0, dest);
        relocate(&mut rebuilt, &idx, 0, dest);
        assert!(patched.patch_routing(cluster.costs(), &[0]));
        rebuilt.rebuild_routing(cluster.costs());
        assert_eq!(fingerprint(&patched), fingerprint(&rebuilt));
    }

    #[test]
    fn node_task_lists_are_sorted_by_global_id() {
        let (cluster, topology, assignment) = setup();
        let idx = ClusterIndex::new(&cluster);
        let mut b = SimBuild::new(cluster.nodes().len());
        b.append_topology(&idx, cluster.costs(), &topology, &assignment);
        b.append_topology(&idx, cluster.costs(), &topology, &assignment);
        // The engine's sorted-membership invariant starts here: appending
        // walks tasks in increasing global id, so every per-node list is
        // born sorted and `apply_migration` keeps it that way.
        for tasks in &b.node_tasks {
            assert!(tasks.windows(2).all(|w| w[0] < w[1]), "{tasks:?}");
        }
    }

    proptest::proptest! {
        /// For any random move set — empty, partial or a full shuffle of
        /// every task — the patched table and side indexes are
        /// bit-identical to a from-scratch rebuild.
        #[test]
        fn patch_is_bit_identical_to_rebuild(
            moves in proptest::collection::vec((0usize..6, 0usize..6), 0..7),
        ) {
            let (cluster, topology, assignment) = setup();
            let idx = ClusterIndex::new(&cluster);
            let mut patched = build(&cluster, &topology, &assignment);
            let mut rebuilt = build(&cluster, &topology, &assignment);
            let mut moved = Vec::new();
            for &(task, dest) in &moves {
                relocate(&mut patched, &idx, task, dest);
                relocate(&mut rebuilt, &idx, task, dest);
                moved.push(task);
            }
            proptest::prop_assert!(patched.patch_routing(cluster.costs(), &moved));
            rebuilt.rebuild_routing(cluster.costs());
            proptest::prop_assert_eq!(fingerprint(&patched), fingerprint(&rebuilt));
        }
    }
}
