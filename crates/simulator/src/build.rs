//! Flattening scheduled topologies into the simulator's task table.

use rstorm_cluster::{Cluster, WorkerSlot};
use rstorm_core::Assignment;
use rstorm_topology::{StreamGrouping, Topology};
use std::collections::HashMap;

/// One downstream subscription of a component, resolved to global
/// simulator task indices.
#[derive(Debug, Clone)]
pub(crate) struct ConsumerGroup {
    pub grouping: StreamGrouping,
    /// Global indices of the consuming component's tasks, in task order.
    pub targets: Vec<usize>,
}

/// A task as the simulator sees it: placement, profile and routing table.
#[derive(Debug, Clone)]
pub(crate) struct SimTaskSpec {
    pub topology: String,
    pub component: String,
    pub slot: WorkerSlot,
    pub node_idx: usize,
    pub rack_idx: usize,
    pub is_spout: bool,
    pub is_sink: bool,
    pub work_ms_per_tuple: f64,
    pub emit_factor: f64,
    pub tuple_bytes: u32,
    pub max_rate_tuples_per_sec: Option<f64>,
    pub max_spout_pending: Option<u32>,
    pub consumers: Vec<ConsumerGroup>,
}

/// Index structures over the cluster, shared by all topologies added to a
/// simulation.
#[derive(Debug)]
pub(crate) struct ClusterIndex {
    pub node_of: HashMap<String, usize>,
    pub rack_of_node: Vec<usize>,
    pub cores: Vec<f64>,
    pub memory_mb: Vec<f64>,
    pub node_names: Vec<String>,
}

impl ClusterIndex {
    pub fn new(cluster: &Cluster) -> Self {
        let mut rack_index: HashMap<&str, usize> = HashMap::new();
        for (i, r) in cluster.racks().iter().enumerate() {
            rack_index.insert(r.as_str(), i);
        }
        let mut node_of = HashMap::new();
        let mut rack_of_node = Vec::new();
        let mut cores = Vec::new();
        let mut memory_mb = Vec::new();
        let mut node_names = Vec::new();
        for (i, n) in cluster.nodes().iter().enumerate() {
            node_of.insert(n.id().as_str().to_owned(), i);
            rack_of_node.push(rack_index[n.rack().as_str()]);
            cores.push((n.capacity().cpu_points / 100.0).max(0.01));
            memory_mb.push(n.capacity().memory_mb);
            node_names.push(n.id().as_str().to_owned());
        }
        Self {
            node_of,
            rack_of_node,
            cores,
            memory_mb,
            node_names,
        }
    }
}

/// Appends every task of `topology` (placed per `assignment`) to `tasks`,
/// resolving consumer routing to global indices, and accumulates each
/// node's memory demand into `node_mem_demand`.
///
/// # Panics
///
/// Panics if the assignment does not cover every task of the topology or
/// references a node missing from the cluster — schedulers in this
/// workspace always produce complete assignments; use
/// `rstorm_core::verify_plan` to diagnose foreign ones.
pub(crate) fn append_topology(
    tasks: &mut Vec<SimTaskSpec>,
    node_mem_demand: &mut [f64],
    index: &ClusterIndex,
    topology: &Topology,
    assignment: &Assignment,
) {
    let task_set = topology.task_set();
    let base = tasks.len();
    let sink_ids: Vec<&str> = topology.sinks().map(|c| c.id().as_str()).collect();

    // First pass: create specs without consumer routing.
    for task in task_set.tasks() {
        let component = topology
            .component(task.component.as_str())
            .expect("task set components exist in the topology");
        let slot = assignment
            .slot_of(task.id)
            .unwrap_or_else(|| {
                panic!(
                    "assignment for `{}` does not place {}",
                    topology.id(),
                    task.id
                )
            })
            .clone();
        let node_idx = *index
            .node_of
            .get(slot.node.as_str())
            .unwrap_or_else(|| panic!("assignment references unknown node `{}`", slot.node));
        node_mem_demand[node_idx] += component.resources().memory_mb;
        let profile = component.profile();
        tasks.push(SimTaskSpec {
            topology: topology.id().as_str().to_owned(),
            component: task.component.as_str().to_owned(),
            slot,
            node_idx,
            rack_idx: index.rack_of_node[node_idx],
            is_spout: component.is_spout(),
            is_sink: sink_ids.contains(&task.component.as_str()),
            work_ms_per_tuple: profile.work_ms_per_tuple,
            emit_factor: profile.emit_factor,
            tuple_bytes: profile.tuple_bytes,
            max_rate_tuples_per_sec: profile.max_rate_tuples_per_sec,
            max_spout_pending: topology.max_spout_pending(),
            consumers: Vec::new(),
        });
    }

    // Second pass: resolve each component's consumers to global indices.
    let global_of: HashMap<&str, Vec<usize>> = task_set
        .by_component()
        .map(|(c, ids)| {
            (
                c.as_str(),
                ids.iter().map(|t| base + t.index()).collect::<Vec<_>>(),
            )
        })
        .collect();
    for task in task_set.tasks() {
        let groups: Vec<ConsumerGroup> = topology
            .consumers(task.component.as_str())
            .iter()
            .map(|(consumer, decl)| ConsumerGroup {
                grouping: decl.grouping.clone(),
                targets: global_of[consumer.as_str()].clone(),
            })
            .collect();
        tasks[base + task.id.index()].consumers = groups;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_core::{GlobalState, RStormScheduler, Scheduler};
    use rstorm_topology::TopologyBuilder;

    fn setup() -> (Cluster, Topology, Assignment) {
        let cluster = ClusterBuilder::new()
            .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap();
        let mut b = TopologyBuilder::new("t");
        b.set_spout("s", 2).set_memory_load(100.0);
        b.set_bolt("m", 3)
            .shuffle_grouping("s")
            .set_memory_load(100.0);
        b.set_bolt("k", 1)
            .global_grouping("m")
            .set_memory_load(100.0);
        let topology = b.build().unwrap();
        let mut state = GlobalState::new(&cluster);
        let assignment = RStormScheduler::new()
            .schedule(&topology, &cluster, &mut state)
            .unwrap();
        (cluster, topology, assignment)
    }

    #[test]
    fn index_covers_all_nodes() {
        let (cluster, _, _) = setup();
        let idx = ClusterIndex::new(&cluster);
        assert_eq!(idx.node_of.len(), 6);
        assert_eq!(idx.cores.len(), 6);
        assert_eq!(idx.cores[0], 1.0);
        assert_eq!(idx.memory_mb[0], 2048.0);
        // Rack indices partition the nodes 3/3.
        assert_eq!(idx.rack_of_node.iter().filter(|&&r| r == 0).count(), 3);
        assert_eq!(idx.rack_of_node.iter().filter(|&&r| r == 1).count(), 3);
    }

    #[test]
    fn tasks_flattened_with_routing() {
        let (cluster, topology, assignment) = setup();
        let idx = ClusterIndex::new(&cluster);
        let mut tasks = Vec::new();
        let mut mem = vec![0.0; cluster.nodes().len()];
        append_topology(&mut tasks, &mut mem, &idx, &topology, &assignment);
        assert_eq!(tasks.len(), 6);
        // Spout tasks route to the middle bolt's three tasks.
        let spout = &tasks[0];
        assert!(spout.is_spout);
        assert!(!spout.is_sink);
        assert_eq!(spout.consumers.len(), 1);
        assert_eq!(spout.consumers[0].targets, vec![2, 3, 4]);
        // Middle bolt routes to the sink.
        assert_eq!(tasks[2].consumers[0].targets, vec![5]);
        assert_eq!(tasks[2].consumers[0].grouping, StreamGrouping::Global);
        // The sink has no consumers and is flagged.
        assert!(tasks[5].is_sink);
        assert!(tasks[5].consumers.is_empty());
        // Memory demand accumulated: 6 tasks × 100 MB.
        assert!((mem.iter().sum::<f64>() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn second_topology_gets_offset_indices() {
        let (cluster, topology, assignment) = setup();
        let idx = ClusterIndex::new(&cluster);
        let mut tasks = Vec::new();
        let mut mem = vec![0.0; cluster.nodes().len()];
        append_topology(&mut tasks, &mut mem, &idx, &topology, &assignment);
        append_topology(&mut tasks, &mut mem, &idx, &topology, &assignment);
        assert_eq!(tasks.len(), 12);
        // Second copy's spout routes into the second copy's bolts.
        assert_eq!(tasks[6].consumers[0].targets, vec![8, 9, 10]);
    }

    #[test]
    #[should_panic(expected = "does not place")]
    fn incomplete_assignment_panics() {
        let (cluster, topology, _) = setup();
        let idx = ClusterIndex::new(&cluster);
        let empty = Assignment::new("t", Default::default());
        let mut tasks = Vec::new();
        let mut mem = vec![0.0; cluster.nodes().len()];
        append_topology(&mut tasks, &mut mem, &idx, &topology, &empty);
    }
}
