//! The event queue: a time-ordered heap with deterministic tie-breaking.
//!
//! Hot-path note: heap maintenance is one comparison per sift step, so
//! the comparison must be cheap. Times are stored as pre-converted
//! ordered `u64` bit patterns (a monotone map of the `f64` time), which
//! makes every heap comparison integer-only; ties still break by the
//! insertion sequence number so runs are bit-for-bit reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Monotone map from a non-negative finite `f64` time to a `u64` whose
/// integer order equals the float order.
///
/// For non-negative IEEE-754 doubles the raw bit pattern is already
/// monotone (sign bit clear, exponent in the high bits); `-0.0` — whose
/// set sign bit would otherwise sort it *above* every positive time — is
/// normalized to `+0.0`. Simulation times are always `>= 0`, so the
/// negative branch of the usual total-order transform is unnecessary.
#[inline]
fn time_key(at: f64) -> u64 {
    debug_assert!(at.is_finite() && at >= 0.0, "invalid event time {at}");
    if at == 0.0 {
        0
    } else {
        at.to_bits()
    }
}

/// An event scheduled at a simulation time, carrying a payload `E`.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    /// Ordered bit pattern of the event time (see [`time_key`]).
    key: u64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap and we want the
        // earliest event first; ties break by insertion sequence so runs
        // are bit-for-bit reproducible.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: f64,
    now_key: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
            now_key: 0,
        }
    }

    /// The current simulation time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// Scheduling before the current time is a model bug: in debug builds
    /// it panics so the bug is caught; in release builds `at` is clamped
    /// to `now` so the event still fires (never silently in the past,
    /// which would corrupt the clock's monotonicity).
    ///
    /// # Panics
    ///
    /// Panics if `at` is not finite, or (debug builds only) if `at` is
    /// before the current time.
    pub fn schedule(&mut self, at: f64, payload: E) {
        assert!(at.is_finite(), "cannot schedule at {at}");
        let at = if at < self.now {
            #[cfg(debug_assertions)]
            panic!("cannot schedule at {at}; now is {}", self.now);
            #[cfg(not(debug_assertions))]
            self.now
        } else {
            at
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            key: time_key(at),
            seq,
            payload,
        });
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.key >= self.now_key, "time went backwards");
        self.now_key = ev.key;
        self.now = f64::from_bits(ev.key);
        Some((self.now, ev.payload))
    }

    /// Allocates a `(key, seq)` slot for an event the caller stores in a
    /// sidecar lane of its own (e.g. a FIFO of fixed-delay timeouts)
    /// instead of this heap. The sequence number comes from the same
    /// counter as [`EventQueue::schedule`], so merging the lanes by
    /// `(key, seq)` reproduces exactly the order a single heap would
    /// have produced. Validation matches `schedule` (finite required;
    /// past times panic in debug, clamp to `now` in release).
    ///
    /// # Panics
    ///
    /// Panics if `at` is not finite, or (debug builds only) if `at` is
    /// before the current time.
    pub fn alloc_slot(&mut self, at: f64) -> (u64, u64) {
        assert!(at.is_finite(), "cannot schedule at {at}");
        let at = if at < self.now {
            #[cfg(debug_assertions)]
            panic!("cannot schedule at {at}; now is {}", self.now);
            #[cfg(not(debug_assertions))]
            self.now
        } else {
            at
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        (time_key(at), seq)
    }

    /// The `(key, seq)` of the earliest heap event, without popping it.
    /// Compare against a sidecar lane's head to decide which lane fires
    /// next.
    pub fn peek_key(&self) -> Option<(u64, u64)> {
        self.heap.peek().map(|ev| (ev.key, ev.seq))
    }

    /// Advances the clock to the time of a sidecar-lane event the caller
    /// is about to handle (see [`EventQueue::alloc_slot`]), returning the
    /// new current time.
    pub fn advance_to(&mut self, key: u64) -> f64 {
        debug_assert!(key >= self.now_key, "time went backwards");
        self.now_key = key;
        self.now = f64::from_bits(key);
        self.now
    }

    /// Number of pending events.
    #[allow(dead_code)] // part of the queue's natural API; used in tests
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[allow(dead_code)] // part of the queue's natural API; used in tests
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn key_order_matches_float_order() {
        // The bit-pattern key must sort exactly like the float for every
        // non-negative time, including zero and subnormal-adjacent values.
        let times = [
            0.0,
            f64::MIN_POSITIVE,
            1e-300,
            0.1,
            1.0,
            1.0 + f64::EPSILON,
            3.5e10,
            f64::MAX,
        ];
        for w in times.windows(2) {
            assert!(time_key(w[0]) < time_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        // -0.0 normalizes to the same key as +0.0.
        assert_eq!(time_key(-0.0), time_key(0.0));
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(5.0, ());
        q.pop();
        assert_eq!(q.now(), 5.0);
        // Scheduling at the current time is allowed.
        q.schedule(5.0, ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(10.0, ());
        q.pop();
        q.schedule(9.0, ());
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn scheduling_in_the_past_clamps_in_release() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "a");
        q.pop();
        q.schedule(9.0, "past");
        q.schedule(10.5, "later");
        // The past event fires at `now`, before the later one, and the
        // clock never moves backwards.
        let (t1, e1) = q.pop().unwrap();
        assert_eq!((t1, e1), (10.0, "past"));
        let (t2, e2) = q.pop().unwrap();
        assert_eq!((t2, e2), (10.5, "later"));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn non_finite_time_rejected() {
        EventQueue::new().schedule(f64::NAN, ());
    }

    #[test]
    fn sidecar_lane_merges_in_schedule_order() {
        // Interleave heap events with slot allocations for a sidecar
        // FIFO; merging by (key, seq) must reproduce the order a single
        // heap would have produced, including ties.
        let mut q = EventQueue::new();
        let mut lane: std::collections::VecDeque<(u64, u64, &str)> = Default::default();
        q.schedule(1.0, "heap@1");
        let (k, s) = q.alloc_slot(2.0);
        lane.push_back((k, s, "lane@2"));
        q.schedule(2.0, "heap@2"); // later seq than lane@2: fires after it
        let (k, s) = q.alloc_slot(3.0);
        lane.push_back((k, s, "lane@3"));

        let mut order = Vec::new();
        loop {
            let take_lane = match (q.peek_key(), lane.front()) {
                (Some(h), Some(&(lk, ls, _))) => (lk, ls) < h,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => break,
            };
            if take_lane {
                let (lk, _, name) = lane.pop_front().unwrap();
                let t = q.advance_to(lk);
                order.push((t, name));
            } else {
                let (t, name) = q.pop().unwrap();
                order.push((t, name));
            }
        }
        assert_eq!(
            order,
            vec![
                (1.0, "heap@1"),
                (2.0, "lane@2"),
                (2.0, "heap@2"),
                (3.0, "lane@3"),
            ]
        );
        assert_eq!(q.now(), 3.0);
    }
}
