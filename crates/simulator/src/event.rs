//! The event queue: a time-ordered heap with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulation time, carrying a payload `E`.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap and we want the
        // earliest event first; ties break by insertion sequence so runs
        // are bit-for-bit reproducible.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// The current simulation time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or not finite — events may not be
    /// scheduled before the current time.
    pub fn schedule(&mut self, at: f64, payload: E) {
        assert!(
            at.is_finite() && at >= self.now,
            "cannot schedule at {at}; now is {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            payload,
        });
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Number of pending events.
    #[allow(dead_code)] // part of the queue's natural API; used in tests
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[allow(dead_code)] // part of the queue's natural API; used in tests
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(5.0, ());
        q.pop();
        assert_eq!(q.now(), 5.0);
        // Scheduling at the current time is allowed.
        q.schedule(5.0, ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10.0, ());
        q.pop();
        q.schedule(9.0, ());
    }
}
