//! The adaptive rebalance plane: profile → detect drift → migrate.
//!
//! [`run_adaptive_rebalance`] wires the adaptive subsystem together for
//! one topology, end to end:
//!
//! 1. **Profile** — schedule the topology with [`RStormScheduler`] on a
//!    live [`GlobalState`], then run a short profiling simulation with
//!    the stats-export hook attached. The [`StatisticServer`] collects
//!    each component's observed CPU busy-time; the report's per-node
//!    utilization doubles as the saturation signal (one source of truth
//!    with the paper's Fig. 10 comparison).
//! 2. **Refine & detect** — blend observed against declared per-task CPU
//!    load with a [`ProfileRefiner`] and let the [`DriftDetector`] flag
//!    components whose declarations have drifted plus saturated and
//!    starved nodes.
//! 3. **Plan** — ask the [`DeltaScheduler`] for a minimal-move migration
//!    plan against the *live* scheduling state — no reschedule from
//!    scratch, every unmoved task keeps its slot and its routes. When
//!    the plan is applied mid-run, the engine patches only the moved
//!    tasks' routing rows (see [`SimConfig::incremental_routing`]), so
//!    applying a small plan costs O(moved·degree), not O(tasks²).
//! 4. **Compare** — run the full horizon three ways from the same
//!    initial placement: untouched (*static*), with the minimal-move
//!    plan applied mid-run (*adaptive*), and with a full
//!    reschedule-from-scratch of the refined topology applied mid-run
//!    at the same per-task pause cost (*rescheduled*). Each migrated
//!    task pays a pause/drain/restore freeze, so the comparison is net
//!    of migration cost.
//!
//! Everything is deterministic: the whole [`AdaptiveOutcome`] is a pure
//! function of `(cluster, topology, config)`. A workload with no drift
//! produces an empty plan, and the adaptive run is then bit-identical to
//! the static one.

use crate::chaos::ChaosError;
use crate::config::SimConfig;
use crate::report::SimReport;
use crate::sim::Simulation;
use rstorm_cluster::Cluster;
use rstorm_core::{
    DeltaScheduler, DriftConfig, DriftDetector, DriftReport, GlobalState, MigrationMove,
    MigrationPlan, ProfileRefiner, RStormScheduler, Scheduler,
};
use rstorm_metrics::StatisticServer;
use rstorm_topology::{Topology, TopologyBuilder};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Knobs of one adaptive-rebalance scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Full-horizon simulation parameters (all three comparison runs).
    pub sim: SimConfig,
    /// Length of the profiling run, in simulated milliseconds.
    pub observe_ms: f64,
    /// Stats-export snapshot interval during the profiling run.
    pub stats_interval_ms: f64,
    /// When, in the full-horizon runs, the migration plan is applied.
    pub rebalance_at_ms: f64,
    /// Pause/drain/restore freeze each migrated task pays.
    pub pause_ms: f64,
    /// EWMA blend factor of the profile refiner (`1.0` = trust the
    /// observation outright).
    pub alpha: f64,
    /// Drift-detector thresholds.
    pub drift: DriftConfig,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            sim: SimConfig::default(),
            observe_ms: 60_000.0,
            stats_interval_ms: 5_000.0,
            rebalance_at_ms: 60_000.0,
            pause_ms: 2_000.0,
            alpha: ProfileRefiner::DEFAULT_ALPHA,
            drift: DriftConfig::default(),
        }
    }
}

impl AdaptiveConfig {
    /// A scenario sized for tests: quick simulation horizon, a short
    /// profiling run and an early rebalance point.
    pub fn quick() -> Self {
        Self {
            sim: SimConfig::quick(),
            observe_ms: 20_000.0,
            stats_interval_ms: 2_000.0,
            rebalance_at_ms: 15_000.0,
            ..Self::default()
        }
    }
}

/// Everything one adaptive-rebalance scenario produced.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// What the detector flagged after the profiling run.
    pub drift: DriftReport,
    /// The minimal-move plan the delta scheduler produced.
    pub plan: MigrationPlan,
    /// Number of tasks a reschedule-from-scratch of the refined topology
    /// would relocate — the move count the delta scheduler avoided.
    pub rescheduled_moves: usize,
    /// The profiling run's report (length [`AdaptiveConfig::observe_ms`]).
    pub profile_report: SimReport,
    /// Full horizon, untouched initial placement.
    pub static_report: SimReport,
    /// Full horizon with the minimal-move plan applied mid-run.
    pub adaptive_report: SimReport,
    /// Full horizon with the full reschedule applied mid-run at the same
    /// per-task pause cost.
    pub rescheduled_report: SimReport,
}

impl AdaptiveOutcome {
    /// Net tuples completed by the static run over the whole horizon.
    pub fn static_net(&self) -> u64 {
        self.static_report.totals.tuples_completed
    }

    /// Net tuples completed by the adaptive run (migration cost
    /// included — the pause windows happen inside the horizon).
    pub fn adaptive_net(&self) -> u64 {
        self.adaptive_report.totals.tuples_completed
    }

    /// Net tuples completed by the reschedule-from-scratch run.
    pub fn rescheduled_net(&self) -> u64 {
        self.rescheduled_report.totals.tuples_completed
    }
}

/// Runs the profile → detect → plan → compare scenario described by
/// `cfg` for one topology. See the module docs for the four stages.
///
/// # Panics
///
/// Panics if the topology does not fit the cluster (the scenario needs a
/// valid initial placement to improve on) or if the configured times are
/// not positive and finite. [`try_run_adaptive_rebalance`] surfaces the
/// placement and migration-planning failures as values instead.
pub fn run_adaptive_rebalance(
    cluster: &Arc<Cluster>,
    topology: &Topology,
    cfg: &AdaptiveConfig,
) -> AdaptiveOutcome {
    try_run_adaptive_rebalance(cluster, topology, cfg)
        .unwrap_or_else(|e| panic!("adaptive rebalance on `{}` failed: {e}", topology.id()))
}

/// [`run_adaptive_rebalance`] with the recovery→migration lookups
/// surfaced as typed [`ChaosError`]s instead of panics: an unplaceable
/// topology is [`ChaosError::InitialPlacement`]; a delta plan or a
/// full-reschedule baseline over inconsistent state (a task outside the
/// task set, an incomplete "complete" placement) is
/// [`ChaosError::MigrationPlanning`].
///
/// # Errors
///
/// [`ChaosError::InitialPlacement`] and [`ChaosError::MigrationPlanning`].
///
/// # Panics
///
/// Still panics when `cfg.observe_ms` is not positive and finite — that
/// is a caller contract, not a property of the fuzzed inputs.
pub fn try_run_adaptive_rebalance(
    cluster: &Arc<Cluster>,
    topology: &Topology,
    cfg: &AdaptiveConfig,
) -> Result<AdaptiveOutcome, ChaosError> {
    assert!(
        cfg.observe_ms > 0.0 && cfg.observe_ms.is_finite(),
        "observe_ms must be positive, got {}",
        cfg.observe_ms
    );
    let tname = topology.id().as_str();

    // -- Stage 1: initial placement + profiling run with stats export. --
    let mut state = GlobalState::new(cluster);
    let scheduler = RStormScheduler::new();
    let initial = scheduler
        .schedule(topology, cluster, &mut state)
        .map_err(|error| ChaosError::InitialPlacement {
            topology: tname.to_owned(),
            error,
        })?;

    let mut profile_cfg = cfg.sim.clone();
    profile_cfg.sim_time_ms = cfg.observe_ms;
    let server = Arc::new(StatisticServer::new(profile_cfg.window_ms));
    let mut profiler = Simulation::new(Arc::clone(cluster), profile_cfg);
    profiler.add_topology(topology, &initial);
    profiler.export_stats(Arc::clone(&server), cfg.stats_interval_ms);
    let profile_report = profiler.run();

    // -- Stage 2: refine profiles and detect drift. --
    let mut refiner = ProfileRefiner::new(cfg.alpha);
    for component in topology.components() {
        let per_task = observed_per_task_demand(&server, tname, component, cfg.observe_ms);
        if per_task <= 0.0 {
            continue; // never ran: keep the declaration
        }
        refiner.observe(
            tname,
            component.id().as_str(),
            component.resources().cpu_points,
            per_task,
        );
    }
    let trunk_utilization = profile_report
        .network
        .as_ref()
        .map(|n| n.trunk_utilization())
        .unwrap_or_default();
    let drift = DriftDetector::new(cfg.drift.clone()).detect_with_network(
        topology,
        &refiner,
        &profile_report.node_utilization,
        &trunk_utilization,
        cluster,
    );

    // -- Stage 3: minimal-move plan on the live state. --
    let plan = DeltaScheduler::new()
        .plan(
            topology,
            cluster,
            &mut state,
            &drift,
            &refiner,
            &BTreeSet::new(),
        )
        .map_err(|e| ChaosError::MigrationPlanning {
            topology: tname.to_owned(),
            reason: format!("delta plan failed on the just-scheduled state: {e}"),
        })?;

    // -- Stage 4: three full-horizon runs off the same initial placement. --
    let run = |migration: Option<&MigrationPlan>| {
        let mut sim = Simulation::new(Arc::clone(cluster), cfg.sim.clone());
        sim.add_topology(topology, &initial);
        if let Some(plan) = migration {
            sim.schedule_migration(plan, cfg.rebalance_at_ms, cfg.pause_ms);
        }
        sim.run()
    };
    let static_report = run(None);
    let adaptive_report = run(Some(&plan));

    let full = full_reschedule_plan(cluster, topology, &refiner, &initial)?;
    let rescheduled_moves = full.len();
    let rescheduled_report = run(Some(&full));

    Ok(AdaptiveOutcome {
        drift,
        plan,
        rescheduled_moves,
        profile_report,
        static_report,
        adaptive_report,
        rescheduled_report,
    })
}

/// The utilization-law demand estimate of one component's per-task CPU
/// load, in the paper's points.
///
/// Observed busy-time on a saturated node is capped by what the node
/// could actually serve, so raw busy-time systematically under-states
/// the demand of exactly the components worth migrating. When upstream
/// components offered more tuples than this one processed (its input
/// queues grew), the busy-time is scaled by `offered / processed` — the
/// work the component *would* have burned had it kept up. Components
/// that kept up are reported as observed.
///
/// The offered count sums each upstream component's emits, which is
/// exact for the one-task-per-consumer groupings (shuffle, fields,
/// local-or-shuffle, global) and a lower bound under `All` grouping.
fn observed_per_task_demand(
    server: &StatisticServer,
    topology: &str,
    component: &rstorm_topology::Component,
    observe_ms: f64,
) -> f64 {
    let name = component.id().as_str();
    let observed_total = server.observed_cpu_points(topology, name, observe_ms);
    if observed_total <= 0.0 {
        return 0.0;
    }
    let processed = server.component_total(topology, name);
    let offered: u64 = component
        .inputs()
        .iter()
        .map(|input| server.component_emitted_total(topology, input.from.as_str()))
        .sum();
    let backlog_scale = if processed > 0 && offered > processed {
        offered as f64 / processed as f64
    } else {
        1.0
    };
    observed_total * backlog_scale / f64::from(component.parallelism())
}

/// The comparison baseline: reschedule the *refined* topology from
/// scratch on a fresh state and migrate every task whose node changed.
/// Any inconsistency — the refined topology no longer fitting an empty
/// cluster, a task missing from the task set, a hole in the "complete"
/// initial placement — surfaces as [`ChaosError::MigrationPlanning`].
fn full_reschedule_plan(
    cluster: &Arc<Cluster>,
    topology: &Topology,
    refiner: &ProfileRefiner,
    initial: &rstorm_core::Assignment,
) -> Result<MigrationPlan, ChaosError> {
    let tname = topology.id().as_str();
    let planning = |reason: String| ChaosError::MigrationPlanning {
        topology: tname.to_owned(),
        reason,
    };
    let refined_topology = refined_clone(topology, refiner);
    let mut fresh = GlobalState::new(cluster);
    let assignment = RStormScheduler::new()
        .schedule(&refined_topology, cluster, &mut fresh)
        .map_err(|e| {
            planning(format!(
                "the refined topology no longer fits an empty cluster: {e}"
            ))
        })?;

    let task_set = topology.task_set();
    let mut moves = Vec::new();
    for (task, slot) in assignment.iter() {
        let moved = match initial.slot_of(task) {
            Some(old) => old.node != slot.node,
            None => true,
        };
        if !moved {
            continue;
        }
        let component = task_set
            .task(task)
            .ok_or_else(|| planning(format!("task {task} is outside the task set")))?
            .component
            .as_str()
            .to_owned();
        let from = initial
            .node_of(task)
            .ok_or_else(|| planning(format!("task {task} has no node in the initial placement")))?
            .clone();
        moves.push(MigrationMove {
            task,
            component,
            from,
            to: slot.node.clone(),
        });
    }
    Ok(MigrationPlan {
        topology: topology.id().clone(),
        moves,
        updated: assignment,
    })
}

/// A structural clone of `topology` with each component's CPU
/// declaration replaced by the refiner's blended estimate. Memory and
/// bandwidth stay declared, as does everything structural: parallelism,
/// groupings, streams, execution profiles and worker hints.
pub fn refined_clone(topology: &Topology, refiner: &ProfileRefiner) -> Topology {
    let tname = topology.id().as_str();
    let mut b = TopologyBuilder::new(topology.id().clone());
    if let Some(workers) = topology.num_workers() {
        b.set_num_workers(workers);
    }
    if let Some(pending) = topology.max_spout_pending() {
        b.set_max_spout_pending(pending);
    }
    for component in topology.components() {
        let refined =
            refiner.refined_request(tname, component.id().as_str(), component.resources());
        let mut streams: Vec<_> = topology
            .declared_streams(component.id().as_str())
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        streams.sort();
        if component.is_spout() {
            let mut d = b.set_spout(component.id().clone(), component.parallelism());
            d.set_profile(*component.profile())
                .set_cpu_load(refined.cpu_points)
                .set_memory_load(refined.memory_mb)
                .set_bandwidth_load(refined.bandwidth);
            for stream in streams {
                d.declare_stream(stream);
            }
        } else {
            let mut d = b.set_bolt(component.id().clone(), component.parallelism());
            d.set_profile(*component.profile())
                .set_cpu_load(refined.cpu_points)
                .set_memory_load(refined.memory_mb)
                .set_bandwidth_load(refined.bandwidth);
            for input in component.inputs() {
                d.grouping_on_stream(
                    input.from.clone(),
                    input.stream.clone(),
                    input.grouping.clone(),
                );
            }
            for stream in streams {
                d.declare_stream(stream);
            }
        }
    }
    b.build()
        .expect("a valid topology stays valid under refined loads")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_topology::ExecutionProfile;

    /// A workload whose declarations are wrong: "crunch" claims almost
    /// no CPU but burns it, so R-Storm packs everything onto few nodes
    /// and saturates them.
    fn drifted_topology() -> Topology {
        let mut b = TopologyBuilder::new("drifted");
        b.set_spout("feed", 2)
            .set_profile(ExecutionProfile::new(0.2, 1.0, 120))
            .set_cpu_load(10.0)
            .set_memory_load(128.0);
        b.set_bolt("crunch", 6)
            .shuffle_grouping("feed")
            .set_profile(ExecutionProfile::new(8.0, 1.0, 120))
            .set_cpu_load(5.0) // declared: nearly free; actual: a core hog
            .set_memory_load(128.0);
        b.set_bolt("sink", 2)
            .shuffle_grouping("crunch")
            .set_profile(ExecutionProfile::new(0.2, 0.0, 120).into_sink())
            .set_cpu_load(10.0)
            .set_memory_load(128.0);
        b.build().unwrap()
    }

    /// A workload whose declarations are accurate: light rates keep the
    /// node comfortable and observed per-task CPU lands within the drift
    /// thresholds of the declarations.
    fn honest_topology() -> Topology {
        let mut b = TopologyBuilder::new("honest");
        b.set_spout("feed", 2)
            .set_profile(ExecutionProfile::new(0.2, 1.0, 120).with_max_rate(400.0))
            .set_cpu_load(8.0)
            .set_memory_load(128.0);
        b.set_bolt("sink", 2)
            .shuffle_grouping("feed")
            .set_profile(ExecutionProfile::new(0.2, 0.0, 120).into_sink())
            .set_cpu_load(8.0)
            .set_memory_load(128.0);
        b.build().unwrap()
    }

    fn cluster() -> Arc<Cluster> {
        Arc::new(
            ClusterBuilder::new()
                .homogeneous_racks(2, 4, ResourceCapacity::emulab_node(), 4)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn drifted_workload_is_detected_and_adaptive_beats_static() {
        let cluster = cluster();
        let t = drifted_topology();
        let out = run_adaptive_rebalance(&cluster, &t, &AdaptiveConfig::quick());

        assert!(!out.drift.is_clean(), "the under-declared bolt drifts");
        assert!(
            out.drift.drifted.iter().any(|d| d.component == "crunch"),
            "drifted: {:?}",
            out.drift.drifted
        );
        assert!(
            !out.drift.saturated_nodes.is_empty(),
            "packing a core hog saturates nodes: {:?}",
            out.profile_report.node_utilization
        );
        assert!(!out.plan.is_empty(), "the delta scheduler found moves");
        assert!(
            out.plan.len() <= out.rescheduled_moves,
            "minimal-move: {} moves vs {} for a full reschedule",
            out.plan.len(),
            out.rescheduled_moves
        );
        assert!(
            out.adaptive_net() > out.static_net(),
            "adaptive {} <= static {}",
            out.adaptive_net(),
            out.static_net()
        );
    }

    #[test]
    fn honest_workload_yields_empty_plan_and_identical_run() {
        let cluster = cluster();
        let t = honest_topology();
        let out = run_adaptive_rebalance(&cluster, &t, &AdaptiveConfig::quick());
        assert!(out.drift.is_clean(), "drift: {:?}", out.drift.drifted);
        assert!(out.plan.is_empty());
        assert_eq!(
            out.static_report, out.adaptive_report,
            "an empty plan keeps the run bit-identical"
        );
    }

    #[test]
    fn fair_network_profile_feeds_trunk_telemetry_into_detection() {
        let cluster = cluster();
        let t = honest_topology();
        let mut cfg = AdaptiveConfig::quick();
        cfg.sim = cfg
            .sim
            .with_network_model(crate::config::NetworkModel::Fair);
        let out = run_adaptive_rebalance(&cluster, &t, &cfg);
        let network = out
            .profile_report
            .network
            .as_ref()
            .expect("fair-plane profiling exports link telemetry");
        let trunks = network.trunk_utilization();
        assert_eq!(trunks.len(), cluster.racks().len());
        // Every congested rack the detector reports really crossed the
        // threshold in the profiling telemetry.
        for rack in &out.drift.congested_racks {
            let (_, util) = trunks
                .iter()
                .find(|(r, _)| r == rack)
                .expect("congested rack has a trunk");
            assert!(*util >= cfg.drift.congested_trunk_utilization);
        }
        // The honest workload is light: calm trunks, clean report, and
        // the empty plan keeps the fair-plane runs bit-identical too.
        assert!(out.drift.congested_racks.is_empty(), "{trunks:?}");
        assert!(out.plan.is_empty());
        assert_eq!(out.static_report, out.adaptive_report);
    }

    #[test]
    fn adaptive_runs_are_deterministic() {
        let cluster = cluster();
        let t = drifted_topology();
        let a = run_adaptive_rebalance(&cluster, &t, &AdaptiveConfig::quick());
        let b = run_adaptive_rebalance(&cluster, &t, &AdaptiveConfig::quick());
        assert_eq!(a.drift, b.drift);
        assert_eq!(a.plan.moves, b.plan.moves);
        assert_eq!(a.adaptive_report, b.adaptive_report);
        assert_eq!(a.rescheduled_report, b.rescheduled_report);
    }

    #[test]
    fn unplaceable_topology_surfaces_as_typed_error_and_wrapper_panics() {
        let cluster = cluster();
        let mut b = TopologyBuilder::new("galaxy");
        b.set_spout("feed", 4)
            .set_profile(ExecutionProfile::new(0.2, 1.0, 120))
            .set_cpu_load(10.0)
            .set_memory_load(1_000_000.0); // no emulab node holds a TB
        let t = b.build().unwrap();

        let err = try_run_adaptive_rebalance(&cluster, &t, &AdaptiveConfig::quick())
            .expect_err("a topology that fits no node cannot be placed");
        match &err {
            ChaosError::InitialPlacement { topology, .. } => assert_eq!(topology, "galaxy"),
            other => panic!("expected InitialPlacement, got {other}"),
        }
        assert!(err.to_string().contains("galaxy"), "{err}");

        let caught = std::panic::catch_unwind(|| {
            run_adaptive_rebalance(&cluster, &t, &AdaptiveConfig::quick())
        });
        assert!(caught.is_err(), "the panicking wrapper still panics");
    }

    #[test]
    fn try_runner_matches_the_panicking_wrapper_on_the_happy_path() {
        let cluster = cluster();
        let t = honest_topology();
        let tried = try_run_adaptive_rebalance(&cluster, &t, &AdaptiveConfig::quick())
            .expect("the honest workload fits");
        let ran = run_adaptive_rebalance(&cluster, &t, &AdaptiveConfig::quick());
        assert_eq!(tried.plan.moves, ran.plan.moves);
        assert_eq!(tried.static_report, ran.static_report);
        assert_eq!(tried.adaptive_report, ran.adaptive_report);
    }

    #[test]
    fn refined_clone_preserves_structure_and_updates_cpu() {
        let t = drifted_topology();
        let mut refiner = ProfileRefiner::new(1.0);
        refiner.observe("drifted", "crunch", 5.0, 90.0);
        let refined = refined_clone(&t, &refiner);
        assert_eq!(refined.id(), t.id());
        assert_eq!(refined.total_tasks(), t.total_tasks());
        let crunch = refined.component("crunch").unwrap();
        assert_eq!(crunch.resources().cpu_points, 90.0);
        assert_eq!(crunch.resources().memory_mb, 128.0);
        let feed = refined.component("feed").unwrap();
        assert_eq!(feed.resources().cpu_points, 10.0, "unobserved: declared");
        // Graph structure carried over: same consumers, same sinks.
        assert_eq!(t.consumers("feed").len(), refined.consumers("feed").len());
        assert_eq!(t.sinks().count(), refined.sinks().count());
    }
}
