//! The chaos harness: one crash-then-recover scenario, end to end.
//!
//! [`run_crash_recover`] wires the workspace's two fault halves together
//! for a single topology:
//!
//! * **Control plane** — a [`RecoveryManager`] replay. The harness clones
//!   the cluster, schedules the topology with [`RStormScheduler`], then
//!   steps simulated time one heartbeat interval at a time. Every node
//!   heartbeats except the victim while it is down
//!   (`[crash_at_ms, heal_at_ms)`); the manager's ticks detect the
//!   failure, re-place the displaced topology on the survivors (degraded
//!   if it must) and upgrade the placement once the victim heals. The
//!   collected [`RecoveryEvent`]s yield time-to-detect and
//!   time-to-recover.
//! * **Data plane** — a fault-injected [`Simulation`] of the *original*
//!   assignment. The [`FaultPlan`] crashes the victim at `crash_at_ms`
//!   and revives it when the control plane first re-placed the topology —
//!   modelling Storm handing the displaced executors to replacement
//!   workers at that moment. (The simulator replays one fixed assignment,
//!   so "recovery" is the original workers coming back rather than a
//!   mid-run re-placement; detection and re-placement latency still come
//!   from the control-plane replay.) The run yields tuples lost and the
//!   throughput-dip depth.
//!
//! The control plane is itself a fault domain: [`run_control_outage`]
//! crashes Nimbus mid-scenario (no detection, no rescheduling while it
//! is down) and fails over to a successor that replays the
//! write-ahead [`rstorm_core::ControlJournal`] — or starts cold when
//! journaling is off — and [`run_fault_plan_with`] derives a
//! [`ReconcileAudit`] whenever a plan carries
//! [`FaultEvent::NimbusCrash`] / [`FaultEvent::ControlLoss`] atoms.
//!
//! Both halves are deterministic, so the whole [`ChaosOutcome`] — report
//! bits included — is a pure function of `(cluster, topology, config)`.
//! Any migrations the scenario schedules reach the routing layer through
//! the engine's incremental patch path (see
//! [`SimConfig::incremental_routing`]); crash and recover themselves
//! never touch the routing table — placement is unchanged, only
//! liveness flips.

use crate::config::SimConfig;
use crate::faults::{FaultEvent, FaultPlan};
use crate::report::{InvariantViolation, RecoveryObservations, SimReport};
use crate::sim::{CheckedReport, Simulation};
use rstorm_cluster::Cluster;
use rstorm_core::{
    Assignment, GlobalState, RStormScheduler, RecoveryConfig, RecoveryEvent, RecoveryManager,
    ScheduleError, Scheduler, SchedulingPlan,
};
use rstorm_topology::Topology;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Why a chaos scenario or fault-plan run could not start. Fuzzed
/// clusters and plans routinely hit these (an unschedulable topology, a
/// generated name that resolves nowhere); surfacing them as values lets
/// a campaign record the outcome and move on instead of aborting.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// The scenario's victim names no node of the cluster.
    UnknownVictim {
        /// The configured victim.
        victim: String,
    },
    /// A fault-plan event names no node of the cluster.
    UnknownNode {
        /// The unresolvable node name.
        node: String,
    },
    /// A fault-plan partition names no rack of the cluster.
    UnknownRack {
        /// The unresolvable rack name.
        rack: String,
    },
    /// The topology does not fit the healthy cluster — the scenario
    /// needs a valid initial placement to disrupt.
    InitialPlacement {
        /// The topology that failed to place.
        topology: String,
        /// The scheduler's reason.
        error: ScheduleError,
    },
    /// The adaptive-rebalance migration path hit an inconsistent
    /// lookup: a task outside the task set, an unplaced task in a
    /// supposedly complete assignment, or a delta plan over a topology
    /// the state never scheduled.
    MigrationPlanning {
        /// The topology whose migration could not be planned.
        topology: String,
        /// What was inconsistent.
        reason: String,
    },
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownVictim { victim } => {
                write!(f, "chaos victim `{victim}` is not a node of the cluster")
            }
            Self::UnknownNode { node } => {
                write!(f, "fault plan references unknown node `{node}`")
            }
            Self::UnknownRack { rack } => {
                write!(f, "fault plan references unknown rack `{rack}`")
            }
            Self::InitialPlacement { topology, error } => write!(
                f,
                "no initial placement for `{topology}` on the healthy cluster: {error}"
            ),
            Self::MigrationPlanning { topology, reason } => {
                write!(f, "cannot plan a migration for `{topology}`: {reason}")
            }
        }
    }
}

impl std::error::Error for ChaosError {}

/// One crash-then-recover scenario: which node dies, when, and for how
/// long, plus the simulation and recovery-loop knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// The node to crash. Must exist in the cluster.
    pub victim: String,
    /// Simulation time of the crash, in milliseconds.
    pub crash_at_ms: f64,
    /// Simulation time the victim starts heartbeating again. Use a value
    /// past `sim.sim_time_ms` for a crash that never heals.
    pub heal_at_ms: f64,
    /// Data-plane simulation parameters.
    pub sim: SimConfig,
    /// Control-plane recovery-loop parameters.
    pub recovery: RecoveryConfig,
}

impl ChaosConfig {
    /// A scenario with default simulation and recovery knobs.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= crash_at_ms < heal_at_ms` and both are finite.
    pub fn new(victim: impl Into<String>, crash_at_ms: f64, heal_at_ms: f64) -> Self {
        assert!(
            crash_at_ms.is_finite() && heal_at_ms.is_finite() && crash_at_ms >= 0.0,
            "chaos times must be finite and non-negative, got crash={crash_at_ms} heal={heal_at_ms}"
        );
        assert!(
            crash_at_ms < heal_at_ms,
            "the victim must heal after it crashes, got crash={crash_at_ms} heal={heal_at_ms}"
        );
        Self {
            victim: victim.into(),
            crash_at_ms,
            heal_at_ms,
            sim: SimConfig::default(),
            recovery: RecoveryConfig::default(),
        }
    }
}

/// Everything a crash-then-recover run produced.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The fault-injected data-plane report, with
    /// [`SimReport::recovery`] populated.
    pub report: SimReport,
    /// The control-plane recovery events, in occurrence order.
    pub events: Vec<RecoveryEvent>,
    /// The control plane's final scheduling plan — what the cluster runs
    /// after detection, rescheduling and (if the victim healed in time)
    /// the post-recovery upgrade.
    pub plan: SchedulingPlan,
    /// The derived recovery metrics (also embedded in `report`).
    pub observations: RecoveryObservations,
}

/// Everything a generalized fault-plan run produced (see
/// [`run_fault_plan_with`]).
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The fault-injected data-plane report, with
    /// [`SimReport::recovery`] populated.
    pub report: SimReport,
    /// Invariant violations the checked engine observed — always empty
    /// unless `sim_cfg.check_invariants` was on (the fuzzer's oracle
    /// input).
    pub violations: Vec<InvariantViolation>,
    /// The control-plane recovery events, in occurrence order.
    pub events: Vec<RecoveryEvent>,
    /// The derived recovery metrics (also embedded in `report`).
    pub observations: RecoveryObservations,
    /// Post-failover reconciliation audit — `Some` exactly when the plan
    /// carried control-plane events ([`FaultPlan::has_control_faults`]),
    /// the fuzz plane's reconciliation-oracle input.
    pub reconciliation: Option<ReconcileAudit>,
}

/// What a successor's post-failover reconciliation looked like — the
/// control-plane analog of [`RecoveryObservations`], derived by
/// [`run_fault_plan_with`] whenever the plan carries Nimbus or
/// control-channel faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconcileAudit {
    /// Latency from the first Nimbus outage's start to the first tick a
    /// successor reassumed control; `-1.0` when no outage ended inside
    /// the run (or the plan had no Nimbus crash at all).
    pub time_to_reassume_ms: f64,
    /// Journal decisions the successor(s) replayed on reassumption —
    /// zero for a cold (journal-less) failover.
    pub decisions_replayed: u64,
    /// Reconciliation-convergence oracle: once the control plane
    /// quiesced (no reschedule pending), the surviving placement covers
    /// exactly as many tasks as a from-scratch reschedule of the same
    /// topology on the surviving cluster would — adopted placements may
    /// sit on different slots, but no capacity the successor could have
    /// used goes unused. Vacuously `true` while retries are still
    /// pending at the horizon.
    pub converged: bool,
    /// Placement-integrity oracle: `true` when some task ended up both
    /// placed and declared unplaced, covered by neither, parked on a
    /// node the control plane believes dead with nothing pending to fix
    /// it, or the whole assignment vanished without a pending
    /// reschedule.
    pub double_placed_or_orphaned: bool,
}

/// Runs the crash-then-recover scenario described by `cfg` for one
/// topology. See the module docs for the two-plane structure.
///
/// Both the initial placement and the control plane's re-placements use
/// [`RStormScheduler`]; [`run_crash_recover_with`] accepts any scheduler
/// (the sweep harness grids over them).
///
/// # Panics
///
/// Panics if the topology does not fit the healthy cluster (the scenario
/// needs a valid initial placement to disrupt) or if `cfg.victim` names
/// an unknown node.
pub fn run_crash_recover(
    cluster: &Arc<Cluster>,
    topology: &Topology,
    cfg: &ChaosConfig,
) -> ChaosOutcome {
    run_crash_recover_with(cluster, topology, cfg, &RStormScheduler::new())
}

/// [`run_crash_recover`] with an explicit scheduler: `scheduler` computes
/// both the initial placement and every control-plane re-placement, so a
/// scenario grid can compare recovery behavior across schedulers.
///
/// # Panics
///
/// As [`run_crash_recover`]. [`try_run_crash_recover_with`] returns the
/// same failures as typed [`ChaosError`]s instead.
pub fn run_crash_recover_with(
    cluster: &Arc<Cluster>,
    topology: &Topology,
    cfg: &ChaosConfig,
    scheduler: &(dyn Scheduler + '_),
) -> ChaosOutcome {
    match try_run_crash_recover_with(cluster, topology, cfg, scheduler) {
        Ok(out) => out,
        Err(ChaosError::UnknownVictim { victim }) => {
            panic!("chaos victim `{victim}` is not a node of the cluster")
        }
        Err(ChaosError::InitialPlacement { .. }) => {
            panic!("chaos scenario requires an initial placement on the healthy cluster")
        }
        Err(e) => panic!("{e}"),
    }
}

/// [`run_crash_recover_with`], with start-up failures — an unknown
/// victim, a topology that cannot place on the healthy cluster — as
/// typed [`ChaosError`]s instead of panics. The chaos fuzzer calls this
/// so generated scenarios surface as results, not aborts.
///
/// # Errors
///
/// [`ChaosError::UnknownVictim`] and [`ChaosError::InitialPlacement`].
pub fn try_run_crash_recover_with(
    cluster: &Arc<Cluster>,
    topology: &Topology,
    cfg: &ChaosConfig,
    scheduler: &(dyn Scheduler + '_),
) -> Result<ChaosOutcome, ChaosError> {
    if !cluster
        .nodes()
        .iter()
        .any(|n| n.id().as_str() == cfg.victim)
    {
        return Err(ChaosError::UnknownVictim {
            victim: cfg.victim.clone(),
        });
    }

    // -- Control plane: replay the recovery loop over heartbeat ticks. --
    let mut control = (**cluster).clone();
    let mut state = GlobalState::new(&control);
    let initial = scheduler
        .schedule(topology, &control, &mut state)
        .map_err(|error| ChaosError::InitialPlacement {
            topology: topology.id().as_str().to_owned(),
            error,
        })?;
    let mut manager = RecoveryManager::new(cfg.recovery.clone());
    let mut events = Vec::new();

    let interval = cfg.recovery.heartbeat_interval_ms;
    let names: Vec<String> = cluster
        .nodes()
        .iter()
        .map(|n| n.id().as_str().to_owned())
        .collect();
    let mut t = 0.0;
    while t <= cfg.sim.sim_time_ms {
        for name in &names {
            let victim_down = *name == cfg.victim && t >= cfg.crash_at_ms && t < cfg.heal_at_ms;
            if !victim_down {
                manager.observe_heartbeat(name, t);
            }
        }
        events.extend(manager.tick(t, &mut control, &mut state, scheduler, &[topology]));
        t += interval;
    }

    let (detect_at, first_resched, recovered_at) = fold_recovery_events(&events);

    // -- Data plane: the same outage injected into the simulator. --
    let mut plan = FaultPlan::new().crash_node(cfg.crash_at_ms, &cfg.victim);
    if let Some(at) = first_resched {
        // The victim's workers come back the moment the control plane
        // first re-placed the topology (replacement workers taking over).
        if at > cfg.crash_at_ms {
            plan = plan.recover_node(at, &cfg.victim);
        }
    }
    let mut sim = Simulation::new(Arc::clone(cluster), cfg.sim.clone());
    sim.add_topology(topology, &initial);
    sim.set_fault_plan(plan);
    let mut report = sim.run();

    // -- Derived observations. --
    let outage_end = first_resched.unwrap_or(cfg.sim.sim_time_ms);
    let dip = report
        .throughput
        .get(topology.id().as_str())
        .map_or(0.0, |t| {
            dip_depth(
                &t.windows,
                t.window_ms,
                cfg.crash_at_ms,
                outage_end + t.window_ms,
            )
        });
    let observations = RecoveryObservations {
        crash_at_ms: cfg.crash_at_ms,
        time_to_detect_ms: detect_at.map_or(-1.0, |at| at - cfg.crash_at_ms),
        time_to_recover_ms: recovered_at.map_or(-1.0, |at| at - cfg.crash_at_ms),
        tuples_lost: report.totals.tuples_lost,
        throughput_dip_depth: dip,
        reschedule_attempts: manager.reschedule_attempts(),
        roots_replayed: report.totals.roots_replayed,
        tuples_quarantined: report.totals.tuples_quarantined,
        suppressed_flaps: manager.suppressed_flaps(),
    };
    report.recovery = Some(observations);

    Ok(ChaosOutcome {
        report,
        events,
        plan: state.plan().clone(),
        observations,
    })
}

/// Runs an arbitrary [`FaultPlan`] — crashes, recovers, flap storms,
/// crash bursts, link degradations and rack partitions — through both
/// planes, the generalization of [`run_crash_recover_with`] the chaos
/// fuzzer drives:
///
/// * **Control plane** — the [`RecoveryManager`] replay, where a node
///   misses heartbeats while it is crashed (per
///   [`FaultPlan::node_down_windows`]) *or* while its rack is
///   partitioned (per [`FaultPlan::rack_partition_windows`] — heartbeats
///   cross racks to reach the control loop), exercising detection, trust
///   hysteresis and the churn limiter under correlated loss.
/// * **Data plane** — the full plan injected into a checked simulation
///   ([`Simulation::run_checked`]), so `sim_cfg.check_invariants = true`
///   surfaces accounting violations in the outcome.
///
/// Control-plane atoms compose in: during a
/// [`FaultEvent::NimbusCrash`] window the manager neither observes nor
/// ticks (a successor reassumes at the first tick after it), during a
/// [`FaultEvent::ControlLoss`] window it ticks but observes nothing —
/// and the outcome carries a [`ReconcileAudit`] whenever the plan has
/// either.
///
/// The derived [`RecoveryObservations`] anchor on the plan's earliest
/// fault (detection/recovery latencies are measured from there).
///
/// # Errors
///
/// [`ChaosError::UnknownNode`] / [`ChaosError::UnknownRack`] when the
/// plan references names the cluster does not have, and
/// [`ChaosError::InitialPlacement`] when the topology cannot place.
pub fn run_fault_plan_with(
    cluster: &Arc<Cluster>,
    topology: &Topology,
    plan: &FaultPlan,
    sim_cfg: &SimConfig,
    recovery: &RecoveryConfig,
    scheduler: &(dyn Scheduler + '_),
) -> Result<PlanOutcome, ChaosError> {
    // Resolve every name the plan references up front so fuzzed plans
    // surface as typed errors here instead of engine panics mid-run.
    for ev in plan.events() {
        match ev {
            FaultEvent::NodeCrash { node, .. } | FaultEvent::NodeRecover { node, .. } => {
                if !cluster.nodes().iter().any(|n| n.id().as_str() == node) {
                    return Err(ChaosError::UnknownNode { node: node.clone() });
                }
            }
            FaultEvent::RackPartition { rack, .. } => {
                if !cluster.racks().iter().any(|r| r.as_str() == rack) {
                    return Err(ChaosError::UnknownRack { rack: rack.clone() });
                }
            }
            // Link and control-plane events carry no node/rack names to
            // resolve.
            FaultEvent::LinkDegrade { .. }
            | FaultEvent::NimbusCrash { .. }
            | FaultEvent::ControlLoss { .. } => {}
        }
    }

    // -- Control plane: replay the recovery loop over heartbeat ticks. --
    // A node is silent while any of its own down windows or its rack's
    // partition windows covers the tick.
    let node_windows = plan.node_down_windows();
    let rack_windows = plan.rack_partition_windows();
    let down_windows: Vec<(String, Vec<(f64, f64)>)> = cluster
        .nodes()
        .iter()
        .map(|n| {
            let name = n.id().as_str().to_owned();
            let mut windows: Vec<(f64, f64)> =
                node_windows.get(name.as_str()).cloned().unwrap_or_default();
            if let Some(rw) = rack_windows.get(n.rack().as_str()) {
                windows.extend(rw.iter().copied());
            }
            (name, windows)
        })
        .collect();
    let nimbus_windows = plan.nimbus_down_windows();
    let loss_windows = plan.control_loss_windows();
    let replay = replay_control_plane(
        cluster,
        topology,
        recovery,
        scheduler,
        sim_cfg.sim_time_ms,
        &down_windows,
        &nimbus_windows,
        &loss_windows,
    )?;
    let ControlReplay {
        manager,
        events,
        state,
        initial,
        reassumed_at_ms,
        decisions_replayed,
    } = replay;

    let (detect_at, first_resched, recovered_at) = fold_recovery_events(&events);

    // -- Data plane: the full plan injected into a checked simulation. --
    let mut sim = Simulation::new(Arc::clone(cluster), sim_cfg.clone());
    sim.add_topology(topology, &initial);
    sim.set_fault_plan(plan.clone());
    let CheckedReport {
        mut report,
        violations,
    } = sim.run_checked();

    // -- Derived observations, anchored on the earliest fault. --
    let first_fault = plan
        .events()
        .iter()
        .map(FaultEvent::at_ms)
        .fold(f64::INFINITY, f64::min);
    let anchor = if first_fault.is_finite() {
        first_fault
    } else {
        0.0
    };
    let outage_end = first_resched.unwrap_or(sim_cfg.sim_time_ms);
    let dip = report
        .throughput
        .get(topology.id().as_str())
        .map_or(0.0, |t| {
            dip_depth(&t.windows, t.window_ms, anchor, outage_end + t.window_ms)
        });
    let observations = RecoveryObservations {
        crash_at_ms: anchor,
        time_to_detect_ms: detect_at.map_or(-1.0, |at| at - anchor),
        time_to_recover_ms: recovered_at.map_or(-1.0, |at| at - anchor),
        tuples_lost: report.totals.tuples_lost,
        throughput_dip_depth: dip,
        reschedule_attempts: manager.reschedule_attempts(),
        roots_replayed: report.totals.roots_replayed,
        tuples_quarantined: report.totals.tuples_quarantined,
        suppressed_flaps: manager.suppressed_flaps(),
    };
    report.recovery = Some(observations);

    // -- Reconciliation audit, when the control plane itself faulted. --
    let reconciliation = plan.has_control_faults().then(|| {
        reconcile_audit(
            cluster,
            topology,
            scheduler,
            &manager,
            &state,
            nimbus_windows.first().map(|w| w.0),
            reassumed_at_ms,
            decisions_replayed,
        )
    });

    Ok(PlanOutcome {
        report,
        violations,
        events,
        observations,
        reconciliation,
    })
}

/// One control-plane outage scenario: the data-plane victim and outage
/// window of a [`ChaosConfig`], plus when Nimbus itself goes down and
/// for how long. Whether the failover is journaled is governed by
/// `recovery.journal` (see [`rstorm_core::RecoveryConfig`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ControlOutageConfig {
    /// The data-plane node to crash. Must exist in the cluster.
    pub victim: String,
    /// Simulation time of the victim's crash, in milliseconds.
    pub crash_at_ms: f64,
    /// Simulation time the victim starts heartbeating again. Use a value
    /// past `sim.sim_time_ms` for a crash that never heals.
    pub heal_at_ms: f64,
    /// Simulation time Nimbus goes down.
    pub nimbus_down_at_ms: f64,
    /// Length of the Nimbus outage in milliseconds.
    pub nimbus_down_ms: f64,
    /// Data-plane simulation parameters.
    pub sim: SimConfig,
    /// Control-plane recovery-loop parameters — `recovery.journal`
    /// selects journaled versus cold failover.
    pub recovery: RecoveryConfig,
}

impl ControlOutageConfig {
    /// A scenario with default simulation and recovery knobs (note the
    /// default journal is **off** — a cold failover).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= crash_at_ms < heal_at_ms`, the Nimbus window
    /// start is finite and non-negative, and its duration is finite and
    /// positive.
    pub fn new(
        victim: impl Into<String>,
        crash_at_ms: f64,
        heal_at_ms: f64,
        nimbus_down_at_ms: f64,
        nimbus_down_ms: f64,
    ) -> Self {
        assert!(
            crash_at_ms.is_finite() && heal_at_ms.is_finite() && crash_at_ms >= 0.0,
            "chaos times must be finite and non-negative, got crash={crash_at_ms} heal={heal_at_ms}"
        );
        assert!(
            crash_at_ms < heal_at_ms,
            "the victim must heal after it crashes, got crash={crash_at_ms} heal={heal_at_ms}"
        );
        assert!(
            nimbus_down_at_ms.is_finite() && nimbus_down_at_ms >= 0.0,
            "the Nimbus outage needs a finite non-negative start"
        );
        assert!(
            nimbus_down_ms.is_finite() && nimbus_down_ms > 0.0,
            "the Nimbus outage must last a positive duration"
        );
        Self {
            victim: victim.into(),
            crash_at_ms,
            heal_at_ms,
            nimbus_down_at_ms,
            nimbus_down_ms,
            sim: SimConfig::default(),
            recovery: RecoveryConfig::default(),
        }
    }
}

/// Everything a control-outage run produced: the [`ChaosOutcome`] fields
/// plus the failover metrics.
#[derive(Debug, Clone)]
pub struct ControlOutcome {
    /// The fault-injected data-plane report, with
    /// [`SimReport::recovery`] populated.
    pub report: SimReport,
    /// The control-plane recovery events, in occurrence order.
    pub events: Vec<RecoveryEvent>,
    /// The control plane's final scheduling plan.
    pub plan: SchedulingPlan,
    /// The derived recovery metrics (also embedded in `report`).
    pub observations: RecoveryObservations,
    /// Latency from the Nimbus outage's start to the first successor
    /// tick, or `-1.0` if the outage outlived the run.
    pub time_to_reassume_ms: f64,
    /// Journal decisions the successor replayed — zero for a cold
    /// failover.
    pub decisions_replayed: u64,
}

/// Runs a crash-then-recover scenario through a Nimbus outage: the
/// victim goes silent as in [`run_crash_recover`], but during
/// `[nimbus_down_at_ms, nimbus_down_at_ms + nimbus_down_ms)` the control
/// plane observes nothing and decides nothing. At the first tick after
/// the window a successor reassumes — replaying the journal when
/// `cfg.recovery.journal` is on, starting cold (and blind to any node
/// that fell silent before the failover) otherwise. The data plane
/// mirrors [`run_crash_recover`]: the victim's workers come back the
/// moment the control plane first re-placed the topology.
///
/// # Errors
///
/// [`ChaosError::UnknownVictim`] and [`ChaosError::InitialPlacement`].
pub fn run_control_outage(
    cluster: &Arc<Cluster>,
    topology: &Topology,
    cfg: &ControlOutageConfig,
) -> Result<ControlOutcome, ChaosError> {
    if !cluster
        .nodes()
        .iter()
        .any(|n| n.id().as_str() == cfg.victim)
    {
        return Err(ChaosError::UnknownVictim {
            victim: cfg.victim.clone(),
        });
    }
    let scheduler = RStormScheduler::new();

    // -- Control plane: the victim is silent for its outage window. --
    let down_windows: Vec<(String, Vec<(f64, f64)>)> = cluster
        .nodes()
        .iter()
        .map(|n| {
            let name = n.id().as_str().to_owned();
            let windows = if name == cfg.victim {
                vec![(cfg.crash_at_ms, cfg.heal_at_ms)]
            } else {
                Vec::new()
            };
            (name, windows)
        })
        .collect();
    let nimbus_windows = vec![(
        cfg.nimbus_down_at_ms,
        cfg.nimbus_down_at_ms + cfg.nimbus_down_ms,
    )];
    let ControlReplay {
        manager,
        events,
        state,
        initial,
        reassumed_at_ms,
        decisions_replayed,
    } = replay_control_plane(
        cluster,
        topology,
        &cfg.recovery,
        &scheduler,
        cfg.sim.sim_time_ms,
        &down_windows,
        &nimbus_windows,
        &[],
    )?;
    let (detect_at, first_resched, recovered_at) = fold_recovery_events(&events);

    // -- Data plane: as in `run_crash_recover`. --
    let mut plan = FaultPlan::new().crash_node(cfg.crash_at_ms, &cfg.victim);
    if let Some(at) = first_resched {
        if at > cfg.crash_at_ms {
            plan = plan.recover_node(at, &cfg.victim);
        }
    }
    let mut sim = Simulation::new(Arc::clone(cluster), cfg.sim.clone());
    sim.add_topology(topology, &initial);
    sim.set_fault_plan(plan);
    let mut report = sim.run();

    // -- Derived observations. --
    let outage_end = first_resched.unwrap_or(cfg.sim.sim_time_ms);
    let dip = report
        .throughput
        .get(topology.id().as_str())
        .map_or(0.0, |t| {
            dip_depth(
                &t.windows,
                t.window_ms,
                cfg.crash_at_ms,
                outage_end + t.window_ms,
            )
        });
    let observations = RecoveryObservations {
        crash_at_ms: cfg.crash_at_ms,
        time_to_detect_ms: detect_at.map_or(-1.0, |at| at - cfg.crash_at_ms),
        time_to_recover_ms: recovered_at.map_or(-1.0, |at| at - cfg.crash_at_ms),
        tuples_lost: report.totals.tuples_lost,
        throughput_dip_depth: dip,
        reschedule_attempts: manager.reschedule_attempts(),
        roots_replayed: report.totals.roots_replayed,
        tuples_quarantined: report.totals.tuples_quarantined,
        suppressed_flaps: manager.suppressed_flaps(),
    };
    report.recovery = Some(observations);

    Ok(ControlOutcome {
        report,
        events,
        plan: state.plan().clone(),
        observations,
        time_to_reassume_ms: reassumed_at_ms.map_or(-1.0, |at| at - cfg.nimbus_down_at_ms),
        decisions_replayed,
    })
}

/// What [`replay_control_plane`] hands back to the harnesses.
struct ControlReplay {
    manager: RecoveryManager,
    events: Vec<RecoveryEvent>,
    state: GlobalState,
    initial: Assignment,
    reassumed_at_ms: Option<f64>,
    decisions_replayed: u64,
}

/// The shared control-plane replay: schedules the topology, then steps
/// heartbeat ticks to `horizon_ms`. A node listed in `down_windows` is
/// silent while any of its windows covers the tick; while a
/// `loss_windows` window is active *no* heartbeat is observed (Nimbus
/// still ticks); while a `nimbus_windows` window is active nothing at
/// all happens, and at the first tick after it a successor reassumes via
/// [`RecoveryManager::reassume`] — with the predecessor's journal when
/// journaling is on, cold otherwise.
#[allow(clippy::too_many_arguments)]
fn replay_control_plane(
    cluster: &Arc<Cluster>,
    topology: &Topology,
    recovery: &RecoveryConfig,
    scheduler: &(dyn Scheduler + '_),
    horizon_ms: f64,
    down_windows: &[(String, Vec<(f64, f64)>)],
    nimbus_windows: &[(f64, f64)],
    loss_windows: &[(f64, f64)],
) -> Result<ControlReplay, ChaosError> {
    let mut control = (**cluster).clone();
    let mut state = GlobalState::new(&control);
    let initial = scheduler
        .schedule(topology, &control, &mut state)
        .map_err(|error| ChaosError::InitialPlacement {
            topology: topology.id().as_str().to_owned(),
            error,
        })?;
    let mut manager = RecoveryManager::new(recovery.clone());
    let mut events = Vec::new();
    let roster: Vec<String> = cluster
        .nodes()
        .iter()
        .map(|n| n.id().as_str().to_owned())
        .collect();

    let interval = recovery.heartbeat_interval_ms;
    let covers =
        |windows: &[(f64, f64)], t: f64| windows.iter().any(|&(at, until)| t >= at && t < until);
    let mut t = 0.0;
    let mut was_down = false;
    let mut reassumed_at_ms = None;
    let mut decisions_replayed = 0u64;
    while t <= horizon_ms {
        if covers(nimbus_windows, t) {
            // Nimbus is down: no observation, no detection, no
            // rescheduling — the data plane runs on without it.
            was_down = true;
            t += interval;
            continue;
        }
        if was_down {
            was_down = false;
            let journal = manager.take_journal();
            let (successor, replayed) =
                RecoveryManager::reassume(recovery.clone(), journal, t, &roster);
            manager = successor;
            decisions_replayed += replayed;
            reassumed_at_ms.get_or_insert(t);
        }
        let channel_lost = covers(loss_windows, t);
        for (name, windows) in down_windows {
            if !channel_lost && !covers(windows, t) {
                manager.observe_heartbeat(name, t);
            }
        }
        events.extend(manager.tick(t, &mut control, &mut state, scheduler, &[topology]));
        t += interval;
    }

    Ok(ControlReplay {
        manager,
        events,
        state,
        initial,
        reassumed_at_ms,
        decisions_replayed,
    })
}

/// First detection, first reschedule, and first *full* reschedule times
/// in an event stream.
fn fold_recovery_events(events: &[RecoveryEvent]) -> (Option<f64>, Option<f64>, Option<f64>) {
    let mut detect_at = None;
    let mut first_resched = None;
    let mut recovered_at = None;
    for event in events {
        match event {
            RecoveryEvent::NodeDeclaredDead { at_ms, .. } => {
                detect_at.get_or_insert(*at_ms);
            }
            RecoveryEvent::TopologyRescheduled {
                at_ms, unplaced, ..
            } => {
                first_resched.get_or_insert(*at_ms);
                if *unplaced == 0 {
                    recovered_at.get_or_insert(*at_ms);
                }
            }
            _ => {}
        }
    }
    (detect_at, first_resched, recovered_at)
}

/// Derives the [`ReconcileAudit`] from the final control-plane state
/// (see the field docs for the two oracles).
#[allow(clippy::too_many_arguments)]
fn reconcile_audit(
    cluster: &Arc<Cluster>,
    topology: &Topology,
    scheduler: &(dyn Scheduler + '_),
    manager: &RecoveryManager,
    state: &GlobalState,
    first_nimbus_down_ms: Option<f64>,
    reassumed_at_ms: Option<f64>,
    decisions_replayed: u64,
) -> ReconcileAudit {
    let dead: BTreeSet<&str> = manager.dead_nodes().collect();
    let quiesced = !manager.has_pending_reschedules();
    let total = topology.total_tasks() as usize;
    let assignment = state.plan().assignment(topology.id().as_str());

    let double_placed_or_orphaned = match assignment {
        Some(a) => {
            let placed: BTreeSet<_> = a.iter().map(|(task, _)| task).collect();
            let double = a.unplaced().iter().any(|task| placed.contains(task));
            let uncovered = placed.len() + a.unplaced().len() != total;
            let orphaned = quiesced && a.iter().any(|(_, slot)| dead.contains(slot.node.as_str()));
            double || uncovered || orphaned
        }
        // The topology placed initially; an assignment that vanished
        // with nothing pending to restore it is orphaned wholesale.
        None => quiesced,
    };

    let converged = if quiesced {
        let mut survivors = (**cluster).clone();
        for node in &dead {
            survivors.kill_node(node);
        }
        let mut fresh = GlobalState::new(&survivors);
        let from_scratch = scheduler
            .schedule(topology, &survivors, &mut fresh)
            .map_or(0, |a| a.len());
        assignment.map_or(0, Assignment::len) == from_scratch
    } else {
        // Still converging at the horizon — the oracle judges quiesced
        // states only.
        true
    };

    ReconcileAudit {
        time_to_reassume_ms: match (first_nimbus_down_ms, reassumed_at_ms) {
            (Some(down), Some(up)) => up - down,
            _ => -1.0,
        },
        decisions_replayed,
        converged,
        double_placed_or_orphaned,
    }
}

/// Depth of the throughput dip: `1 - worst_outage_window / steady_mean`,
/// clamped to `[0, 1]`. The steady mean averages the windows that ended
/// before the crash (window 0 is skipped as warm-up); the outage windows
/// are those overlapping `[crash_at_ms, outage_end_ms)`. Returns 0 when
/// either set is empty or the pre-crash throughput was zero.
fn dip_depth(windows: &[f64], window_ms: f64, crash_at_ms: f64, outage_end_ms: f64) -> f64 {
    let mut steady_sum = 0.0;
    let mut steady_n = 0u32;
    let mut outage_min = f64::INFINITY;
    for (i, &w) in windows.iter().enumerate() {
        let start = i as f64 * window_ms;
        let end = start + window_ms;
        if i > 0 && end <= crash_at_ms {
            steady_sum += w;
            steady_n += 1;
        }
        if start < outage_end_ms && end > crash_at_ms {
            outage_min = outage_min.min(w);
        }
    }
    if steady_n == 0 || outage_min.is_infinite() {
        return 0.0;
    }
    let steady_mean = steady_sum / f64::from(steady_n);
    if steady_mean <= 0.0 {
        return 0.0;
    }
    ((steady_mean - outage_min) / steady_mean).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstorm_cluster::{ClusterBuilder, ResourceCapacity};
    use rstorm_core::verify_plan;
    use rstorm_topology::{ExecutionProfile, TopologyBuilder};

    fn topology() -> Topology {
        let mut b = TopologyBuilder::new("chaos-t");
        b.set_spout("src", 2)
            .set_profile(ExecutionProfile::network_bound(100))
            .set_cpu_load(25.0)
            .set_memory_load(256.0);
        b.set_bolt("sink", 2)
            .shuffle_grouping("src")
            .set_profile(ExecutionProfile::network_bound(100).into_sink())
            .set_cpu_load(25.0)
            .set_memory_load(256.0);
        b.build().unwrap()
    }

    fn cluster() -> Arc<Cluster> {
        Arc::new(
            ClusterBuilder::new()
                .homogeneous_racks(2, 3, ResourceCapacity::emulab_node(), 4)
                .build()
                .unwrap(),
        )
    }

    /// The node R-Storm colocates the topology on — crashing anything
    /// else would displace nothing.
    fn host_node(cluster: &Cluster, t: &Topology) -> String {
        let mut state = GlobalState::new(cluster);
        let a = RStormScheduler::new()
            .schedule(t, cluster, &mut state)
            .unwrap();
        let host = a.iter().next().unwrap().1.node.as_str().to_owned();
        host
    }

    fn scenario(victim: String) -> ChaosConfig {
        let mut cfg = ChaosConfig::new(victim, 20_000.0, 35_000.0);
        cfg.sim = SimConfig::quick();
        cfg
    }

    #[test]
    fn crash_is_detected_and_topology_fully_recovers() {
        let cluster = cluster();
        let t = topology();
        let cfg = scenario(host_node(&cluster, &t));
        let out = run_crash_recover(&cluster, &t, &cfg);

        let obs = out.observations;
        // Detection takes at least the miss window measured from the
        // victim's last heartbeat — which precedes the crash by at most
        // one interval.
        let window = cfg.recovery.heartbeat_interval_ms * f64::from(cfg.recovery.miss_threshold);
        assert!(
            obs.time_to_detect_ms >= window - cfg.recovery.heartbeat_interval_ms
                && obs.time_to_detect_ms <= window + cfg.recovery.heartbeat_interval_ms,
            "detected after {} ms, window is {} ms",
            obs.time_to_detect_ms,
            window
        );
        // Full recovery happened, after (or at) detection.
        assert!(
            obs.time_to_recover_ms >= obs.time_to_detect_ms,
            "recover {} ms < detect {} ms",
            obs.time_to_recover_ms,
            obs.time_to_detect_ms
        );
        assert!(obs.reschedule_attempts >= 1);
        // The outage destroyed work and dented sink throughput.
        assert!(obs.tuples_lost > 0, "a crashed worker loses queued tuples");
        assert!(
            obs.throughput_dip_depth > 0.0 && obs.throughput_dip_depth <= 1.0,
            "dip depth {} out of range",
            obs.throughput_dip_depth
        );
        // The final control-plane plan is complete and verifiable.
        let assignment = out.plan.assignment(t.id().as_str()).expect("re-placed");
        assert!(!assignment.is_degraded());
        assert!(verify_plan(&out.plan, &[&t], &cluster).is_empty());
        // The report embeds the same observations.
        assert_eq!(out.report.recovery, Some(obs));
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let cluster = cluster();
        let t = topology();
        let cfg = scenario(host_node(&cluster, &t));
        let a = run_crash_recover(&cluster, &t, &cfg);
        let b = run_crash_recover(&cluster, &t, &cfg);
        assert_eq!(a.report, b.report, "same scenario, same bits");
        assert_eq!(a.events, b.events);
        assert_eq!(a.report.to_json(), b.report.to_json());
    }

    #[test]
    fn unhealed_crash_reports_sentinels_when_nothing_fits() {
        // A topology that only fits with every node alive: killing one
        // node leaves survivors that can hold part of it at best.
        let cluster = Arc::new(
            ClusterBuilder::new()
                .homogeneous_racks(1, 2, ResourceCapacity::new(400.0, 3_000.0, 100.0), 4)
                .build()
                .unwrap(),
        );
        let mut b = TopologyBuilder::new("big");
        b.set_spout("src", 2)
            .set_profile(ExecutionProfile::network_bound(100))
            .set_cpu_load(10.0)
            .set_memory_load(1_400.0);
        b.set_bolt("sink", 2)
            .shuffle_grouping("src")
            .set_profile(ExecutionProfile::network_bound(100).into_sink())
            .set_cpu_load(10.0)
            .set_memory_load(1_400.0);
        let t = b.build().unwrap();

        let victim = cluster.nodes()[0].id().as_str().to_owned();
        let mut cfg = ChaosConfig::new(victim, 10_000.0, 120_000.0); // never heals in a quick run
        cfg.sim = SimConfig::quick();
        let out = run_crash_recover(&cluster, &t, &cfg);

        assert!(out.observations.time_to_detect_ms > 0.0, "crash detected");
        assert!(
            out.observations.time_to_recover_ms < 0.0,
            "full recovery is impossible while the victim is down"
        );
        // Whatever the control plane managed is degraded at best, and
        // never overcommits memory.
        if let Some(a) = out.plan.assignment(t.id().as_str()) {
            assert!(a.is_degraded());
        }
        assert!(!verify_plan(&out.plan, &[&t], &cluster)
            .iter()
            .any(|v| matches!(v, rstorm_core::Violation::MemoryOvercommit { .. })));
    }

    #[test]
    #[should_panic(expected = "not a node")]
    fn unknown_victim_is_rejected() {
        run_crash_recover(
            &cluster(),
            &topology(),
            &ChaosConfig::new("ghost", 1.0, 2.0),
        );
    }

    #[test]
    fn try_variant_reports_unknown_victim_as_value() {
        let err = try_run_crash_recover_with(
            &cluster(),
            &topology(),
            &ChaosConfig::new("ghost", 1.0, 2.0),
            &RStormScheduler::new(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ChaosError::UnknownVictim {
                victim: "ghost".into()
            }
        );
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn unschedulable_topology_surfaces_as_typed_error() {
        // A topology no node can hold: the scenario cannot start, and a
        // fuzzed cluster must learn that as a result, not an abort.
        let cluster = cluster();
        let mut b = TopologyBuilder::new("huge");
        b.set_spout("src", 1)
            .set_profile(ExecutionProfile::network_bound(100))
            .set_cpu_load(10.0)
            .set_memory_load(1e9);
        b.set_bolt("sink", 1)
            .shuffle_grouping("src")
            .set_profile(ExecutionProfile::network_bound(100).into_sink())
            .set_cpu_load(10.0)
            .set_memory_load(1e9);
        let t = b.build().unwrap();
        let victim = cluster.nodes()[0].id().as_str().to_owned();
        let cfg = ChaosConfig::new(victim, 1_000.0, 2_000.0);
        let err =
            try_run_crash_recover_with(&cluster, &t, &cfg, &RStormScheduler::new()).unwrap_err();
        assert!(
            matches!(err, ChaosError::InitialPlacement { ref topology, .. } if topology == "huge"),
            "got {err:?}"
        );
        // The same failure keeps panicking through the legacy entry point.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_crash_recover(&cluster, &t, &cfg)
        }));
        assert!(caught.is_err(), "the panicking wrapper still panics");
    }

    #[test]
    fn fault_plan_runner_validates_names() {
        let cluster = cluster();
        let t = topology();
        let bad_node = FaultPlan::new().crash_node(1_000.0, "ghost");
        let err = run_fault_plan_with(
            &cluster,
            &t,
            &bad_node,
            &SimConfig::quick(),
            &RecoveryConfig::default(),
            &RStormScheduler::new(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ChaosError::UnknownNode {
                node: "ghost".into()
            }
        );

        let bad_rack = FaultPlan::new().partition_rack(1_000.0, 2_000.0, "ghost-rack");
        let err = run_fault_plan_with(
            &cluster,
            &t,
            &bad_rack,
            &SimConfig::quick(),
            &RecoveryConfig::default(),
            &RStormScheduler::new(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ChaosError::UnknownRack {
                rack: "ghost-rack".into()
            }
        );
    }

    #[test]
    fn partition_silences_heartbeats_and_is_detected() {
        // Partition the rack hosting the topology: workers keep running
        // and all traffic is intra-rack (R-Storm colocates), so the data
        // plane is untouched — but heartbeats cross racks, so the control
        // plane must declare the rack's nodes dead within the window.
        let cluster = cluster();
        let t = topology();
        let host = host_node(&cluster, &t);
        let rack = cluster.rack_of(&host).unwrap().as_str().to_owned();
        let plan = FaultPlan::new().partition_rack(20_000.0, 45_000.0, &rack);
        let sim_cfg = SimConfig::quick();
        let recovery = RecoveryConfig::default();
        let out = run_fault_plan_with(
            &cluster,
            &t,
            &plan,
            &sim_cfg,
            &recovery,
            &RStormScheduler::new(),
        )
        .unwrap();
        assert!(
            out.events.iter().any(
                |e| matches!(e, RecoveryEvent::NodeDeclaredDead { node, .. } if *node == host)
            ),
            "the partitioned host must miss enough heartbeats: {:?}",
            out.events
        );
        assert!(out.observations.time_to_detect_ms > 0.0);
        assert_eq!(
            out.report.totals.tuples_lost, 0,
            "intra-rack traffic is unaffected by the partition"
        );
        // Deterministic end to end.
        let again = run_fault_plan_with(
            &cluster,
            &t,
            &plan,
            &sim_cfg,
            &recovery,
            &RStormScheduler::new(),
        )
        .unwrap();
        assert_eq!(out.report, again.report);
        assert_eq!(out.report.to_json(), again.report.to_json());
        assert_eq!(out.events, again.events);
    }

    #[test]
    fn journaled_successor_detects_a_crash_masked_by_the_outage() {
        // The victim crashes while Nimbus is down, so the silence starts
        // before any successor exists. A journaled failover seeds the
        // roster's heartbeats on reassumption and still detects it.
        let cluster = cluster();
        let t = topology();
        let mut cfg = ControlOutageConfig::new(
            host_node(&cluster, &t),
            20_000.0,
            50_000.0,
            18_000.0,
            12_000.0,
        );
        cfg.sim = SimConfig::quick();
        cfg.recovery.journal = true;
        let out = run_control_outage(&cluster, &t, &cfg).unwrap();

        // Reassumption happens at the first tick past the 12 s window.
        assert!(
            out.time_to_reassume_ms >= cfg.nimbus_down_ms
                && out.time_to_reassume_ms
                    <= cfg.nimbus_down_ms + 2.0 * cfg.recovery.heartbeat_interval_ms,
            "reassumed after {} ms of a {} ms outage",
            out.time_to_reassume_ms,
            cfg.nimbus_down_ms
        );
        // Nothing was journaled pre-outage, so nothing replays — the
        // win here is the seeded roster, not the record replay.
        assert_eq!(out.decisions_replayed, 0);
        let declared = out
            .events
            .iter()
            .find_map(|e| match e {
                RecoveryEvent::NodeDeclaredDead { node, at_ms, .. } if *node == cfg.victim => {
                    Some(*at_ms)
                }
                _ => None,
            })
            .expect("the successor must declare the masked crash");
        assert!(
            declared >= cfg.nimbus_down_at_ms + cfg.nimbus_down_ms,
            "declared at {declared} ms, inside the outage"
        );
        assert!(out.observations.time_to_recover_ms >= out.observations.time_to_detect_ms);

        // Deterministic end to end.
        let again = run_control_outage(&cluster, &t, &cfg).unwrap();
        assert_eq!(out.report, again.report);
        assert_eq!(out.events, again.events);
        assert_eq!(out.time_to_reassume_ms, again.time_to_reassume_ms);
    }

    #[test]
    fn cold_successor_stays_blind_to_a_pre_failover_silence() {
        // Same scenario, journal off: the cold successor has never seen
        // a heartbeat from the victim, so it can never count the misses.
        let cluster = cluster();
        let t = topology();
        let mut cfg = ControlOutageConfig::new(
            host_node(&cluster, &t),
            20_000.0,
            50_000.0,
            18_000.0,
            12_000.0,
        );
        cfg.sim = SimConfig::quick();
        assert!(!cfg.recovery.journal, "cold failover is the default");
        let out = run_control_outage(&cluster, &t, &cfg).unwrap();

        assert_eq!(out.decisions_replayed, 0);
        assert!(
            !out.events
                .iter()
                .any(|e| matches!(e, RecoveryEvent::NodeDeclaredDead { .. })),
            "a cold successor cannot detect a pre-failover silence: {:?}",
            out.events
        );
        assert_eq!(out.observations.time_to_detect_ms, -1.0);
        assert_eq!(out.observations.time_to_recover_ms, -1.0);
    }

    #[test]
    fn successor_replays_pre_outage_decisions_without_redeclaring() {
        // The crash is detected and rescheduled *before* Nimbus dies;
        // the successor replays those records and must not act twice.
        let cluster = cluster();
        let t = topology();
        let mut cfg = ControlOutageConfig::new(
            host_node(&cluster, &t),
            5_000.0,
            50_000.0,
            14_000.0,
            8_000.0,
        );
        cfg.sim = SimConfig::quick();
        cfg.recovery.journal = true;
        let out = run_control_outage(&cluster, &t, &cfg).unwrap();

        // At least the dead declaration and one reschedule were in the
        // journal when the outage hit.
        assert!(
            out.decisions_replayed >= 2,
            "expected the declare + reschedule records, replayed {}",
            out.decisions_replayed
        );
        let declarations = out
            .events
            .iter()
            .filter(|e| {
                matches!(e, RecoveryEvent::NodeDeclaredDead { node, .. } if *node == cfg.victim)
            })
            .count();
        assert_eq!(
            declarations, 1,
            "the replayed dead set must suppress a duplicate declaration"
        );
        assert!(out.observations.time_to_detect_ms > 0.0);
    }

    #[test]
    fn control_outage_rejects_unknown_victims_as_typed_error() {
        let err = run_control_outage(
            &cluster(),
            &topology(),
            &ControlOutageConfig::new("ghost", 1_000.0, 2_000.0, 500.0, 1_000.0),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ChaosError::UnknownVictim {
                victim: "ghost".into()
            }
        );
    }
}
