//! Components: the vertices of a topology graph (spouts and bolts).

use crate::grouping::StreamGrouping;
use crate::ids::{ComponentId, StreamId};
use crate::profile::ExecutionProfile;
use crate::resource::ResourceRequest;
use std::fmt;

/// Whether a component is a stream source or a stream transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// A source of data streams; emits an unbounded number of tuples.
    Spout,
    /// Consumes, processes and potentially emits new streams of data.
    Bolt,
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Spout => f.write_str("spout"),
            Self::Bolt => f.write_str("bolt"),
        }
    }
}

/// A subscription of a bolt to one input stream of an upstream component.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InputDeclaration {
    /// The component emitting the subscribed stream.
    pub from: ComponentId,
    /// The stream of `from` being subscribed to (usually `"default"`).
    pub stream: StreamId,
    /// How tuples on the stream are partitioned among this bolt's tasks.
    pub grouping: StreamGrouping,
}

impl InputDeclaration {
    /// Creates a subscription to `from`'s default stream with the given
    /// grouping.
    pub fn new(from: impl Into<ComponentId>, grouping: StreamGrouping) -> Self {
        Self {
            from: from.into(),
            stream: StreamId::default_stream(),
            grouping,
        }
    }

    /// Creates a subscription to a named stream of `from`.
    pub fn on_stream(
        from: impl Into<ComponentId>,
        stream: impl Into<StreamId>,
        grouping: StreamGrouping,
    ) -> Self {
        Self {
            from: from.into(),
            stream: stream.into(),
            grouping,
        }
    }
}

/// A processing operator in a topology: a spout or a bolt, together with
/// its parallelism hint, per-instance resource request, input
/// subscriptions and (for simulation) an execution profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    id: ComponentId,
    kind: ComponentKind,
    parallelism: u32,
    resources: ResourceRequest,
    inputs: Vec<InputDeclaration>,
    profile: ExecutionProfile,
}

impl Component {
    /// Creates a component. Prefer [`crate::TopologyBuilder`], which also
    /// validates the graph.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn new(id: impl Into<ComponentId>, kind: ComponentKind, parallelism: u32) -> Self {
        assert!(parallelism > 0, "parallelism hint must be at least 1");
        Self {
            id: id.into(),
            kind,
            parallelism,
            resources: ResourceRequest::default(),
            inputs: Vec::new(),
            profile: ExecutionProfile::default(),
        }
    }

    /// The component's identifier.
    pub fn id(&self) -> &ComponentId {
        &self.id
    }

    /// Spout or bolt.
    pub fn kind(&self) -> ComponentKind {
        self.kind
    }

    /// Returns true for spouts.
    pub fn is_spout(&self) -> bool {
        self.kind == ComponentKind::Spout
    }

    /// Number of parallel tasks this component is instantiated into.
    pub fn parallelism(&self) -> u32 {
        self.parallelism
    }

    /// Per-instance (per-task) resource demand.
    pub fn resources(&self) -> &ResourceRequest {
        &self.resources
    }

    /// Total resource demand across all `parallelism` instances.
    pub fn total_resources(&self) -> ResourceRequest {
        self.resources.scaled(f64::from(self.parallelism))
    }

    /// Input subscriptions (empty for spouts).
    pub fn inputs(&self) -> &[InputDeclaration] {
        &self.inputs
    }

    /// Simulation execution profile (tuple cost / fan-out / size).
    pub fn profile(&self) -> &ExecutionProfile {
        &self.profile
    }

    pub(crate) fn resources_mut(&mut self) -> &mut ResourceRequest {
        &mut self.resources
    }

    pub(crate) fn set_profile(&mut self, profile: ExecutionProfile) {
        self.profile = profile;
    }

    pub(crate) fn add_input(&mut self, input: InputDeclaration) {
        self.inputs.push(input);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_component_has_defaults() {
        let c = Component::new("counter", ComponentKind::Bolt, 4);
        assert_eq!(c.id().as_str(), "counter");
        assert_eq!(c.kind(), ComponentKind::Bolt);
        assert!(!c.is_spout());
        assert_eq!(c.parallelism(), 4);
        assert_eq!(*c.resources(), ResourceRequest::default());
        assert!(c.inputs().is_empty());
    }

    #[test]
    #[should_panic(expected = "parallelism hint must be at least 1")]
    fn zero_parallelism_rejected() {
        Component::new("c", ComponentKind::Bolt, 0);
    }

    #[test]
    fn total_resources_scale_with_parallelism() {
        let mut c = Component::new("c", ComponentKind::Spout, 10);
        *c.resources_mut() = ResourceRequest::new(50.0, 1024.0, 1.0);
        let total = c.total_resources();
        assert_eq!(total.cpu_points, 500.0);
        assert_eq!(total.memory_mb, 10240.0);
        assert_eq!(total.bandwidth, 10.0);
    }

    #[test]
    fn input_declaration_defaults_to_default_stream() {
        let d = InputDeclaration::new("spout", StreamGrouping::Shuffle);
        assert_eq!(d.stream, StreamId::default_stream());
        let named = InputDeclaration::on_stream("spout", "errors", StreamGrouping::All);
        assert_eq!(named.stream.as_str(), "errors");
    }

    #[test]
    fn kind_display() {
        assert_eq!(ComponentKind::Spout.to_string(), "spout");
        assert_eq!(ComponentKind::Bolt.to_string(), "bolt");
    }
}
