//! Topology graph traversals.
//!
//! Implements the paper's Algorithm 2 (*BFS topology traversal*): a
//! breadth-first walk over the component graph starting from the spouts,
//! treating edges as undirected (a component's "neighbors" are both its
//! producers and consumers). BFS visits one level at a time, producing a
//! partial ordering in which adjacent components appear in close
//! succession — the property R-Storm's task-selection step relies on to
//! colocate communicating tasks.
//!
//! A depth-first variant and plain declaration order are provided for the
//! ablation experiments.

use crate::ids::ComponentId;
use crate::topology::Topology;
use std::collections::{HashSet, VecDeque};

/// Strategy for ordering the components of a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TraversalOrder {
    /// Breadth-first from the spouts (the paper's choice, Algorithm 2).
    #[default]
    Bfs,
    /// Depth-first from the spouts (ablation).
    Dfs,
    /// Raw declaration order, ignoring the graph (ablation).
    Declaration,
}

impl TraversalOrder {
    /// Produces the component ordering for `topology` under this strategy.
    pub fn order(self, topology: &Topology) -> Vec<ComponentId> {
        match self {
            Self::Bfs => bfs_component_order(topology),
            Self::Dfs => dfs_component_order(topology),
            Self::Declaration => topology
                .components()
                .iter()
                .map(|c| c.id().clone())
                .collect(),
        }
    }
}

/// Breadth-first component ordering starting from the spouts
/// (Algorithm 2 of the paper).
///
/// All spouts are enqueued first, in declaration order; neighbors
/// (upstream and downstream) are visited level by level. Every component
/// reachable from a spout appears exactly once; components unreachable
/// from any spout (possible only in exotic cyclic constructions) are
/// appended at the end in declaration order so that the result is always
/// a complete ordering.
pub fn bfs_component_order(topology: &Topology) -> Vec<ComponentId> {
    let mut visited: HashSet<ComponentId> = HashSet::new();
    let mut order: Vec<ComponentId> = Vec::with_capacity(topology.components().len());
    let mut queue: VecDeque<ComponentId> = VecDeque::new();

    for spout in topology.spouts() {
        if visited.insert(spout.id().clone()) {
            queue.push_back(spout.id().clone());
            order.push(spout.id().clone());
        }
    }

    while let Some(current) = queue.pop_front() {
        for neighbor in topology.neighbor_ids(current.as_str()) {
            if visited.insert(neighbor.clone()) {
                queue.push_back(neighbor.clone());
                order.push(neighbor.clone());
            }
        }
    }

    append_unreachable(topology, &mut order, &mut visited);
    order
}

/// Depth-first component ordering starting from the spouts (ablation
/// alternative to [`bfs_component_order`]).
pub fn dfs_component_order(topology: &Topology) -> Vec<ComponentId> {
    let mut visited: HashSet<ComponentId> = HashSet::new();
    let mut order: Vec<ComponentId> = Vec::with_capacity(topology.components().len());

    for spout in topology.spouts() {
        if !visited.insert(spout.id().clone()) {
            continue;
        }
        order.push(spout.id().clone());
        let mut stack = vec![spout.id().clone()];
        while let Some(current) = stack.last().cloned() {
            let next = topology
                .neighbor_ids(current.as_str())
                .into_iter()
                .find(|n| !visited.contains(*n))
                .cloned();
            match next {
                Some(n) => {
                    visited.insert(n.clone());
                    order.push(n.clone());
                    stack.push(n);
                }
                None => {
                    stack.pop();
                }
            }
        }
    }

    append_unreachable(topology, &mut order, &mut visited);
    order
}

fn append_unreachable(
    topology: &Topology,
    order: &mut Vec<ComponentId>,
    visited: &mut HashSet<ComponentId>,
) {
    for c in topology.components() {
        if visited.insert(c.id().clone()) {
            order.push(c.id().clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;

    fn diamond() -> Topology {
        let mut b = TopologyBuilder::new("diamond");
        b.set_spout("src", 1);
        b.set_bolt("left", 1).shuffle_grouping("src");
        b.set_bolt("right", 1).shuffle_grouping("src");
        b.set_bolt("join", 1)
            .shuffle_grouping("left")
            .shuffle_grouping("right");
        b.build().unwrap()
    }

    fn linear(n: usize) -> Topology {
        let mut b = TopologyBuilder::new("linear");
        b.set_spout("c0", 1);
        for i in 1..n {
            b.set_bolt(format!("c{i}"), 1)
                .shuffle_grouping(format!("c{}", i - 1));
        }
        b.build().unwrap()
    }

    #[test]
    fn bfs_visits_levels_in_order() {
        let order = bfs_component_order(&diamond());
        let names: Vec<_> = order.iter().map(|c| c.as_str()).collect();
        assert_eq!(names, vec!["src", "left", "right", "join"]);
    }

    #[test]
    fn bfs_on_linear_matches_chain_order() {
        let order = bfs_component_order(&linear(5));
        let names: Vec<_> = order.iter().map(|c| c.as_str()).collect();
        assert_eq!(names, vec!["c0", "c1", "c2", "c3", "c4"]);
    }

    #[test]
    fn dfs_goes_deep_first() {
        let order = dfs_component_order(&diamond());
        let names: Vec<_> = order.iter().map(|c| c.as_str()).collect();
        // DFS from src dives through left into join before visiting right.
        assert_eq!(names, vec!["src", "left", "join", "right"]);
    }

    #[test]
    fn every_component_appears_exactly_once() {
        for strategy in [
            TraversalOrder::Bfs,
            TraversalOrder::Dfs,
            TraversalOrder::Declaration,
        ] {
            let t = diamond();
            let order = strategy.order(&t);
            assert_eq!(order.len(), t.components().len(), "{strategy:?}");
            let unique: HashSet<_> = order.iter().collect();
            assert_eq!(unique.len(), order.len(), "{strategy:?}");
        }
    }

    #[test]
    fn multiple_spouts_all_seed_the_frontier() {
        let mut b = TopologyBuilder::new("two-spouts");
        b.set_spout("s1", 1);
        b.set_spout("s2", 1);
        b.set_bolt("merge", 1)
            .shuffle_grouping("s1")
            .shuffle_grouping("s2");
        let t = b.build().unwrap();
        let names: Vec<_> = bfs_component_order(&t)
            .iter()
            .map(|c| c.as_str().to_owned())
            .collect();
        assert_eq!(names, vec!["s1", "s2", "merge"]);
    }

    #[test]
    fn cyclic_topology_terminates() {
        let mut b = TopologyBuilder::new("cyclic");
        b.set_spout("src", 1);
        b.set_bolt("a", 1)
            .shuffle_grouping("src")
            .shuffle_grouping("b");
        b.set_bolt("b", 1).shuffle_grouping("a");
        let t = b.build().unwrap();
        let order = bfs_component_order(&t);
        assert_eq!(order.len(), 3);
    }
}
