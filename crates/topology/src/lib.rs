//! # rstorm-topology
//!
//! A Storm-style *topology* model: the logical computation graph a stream
//! processing application is described by, exactly as consumed by the
//! R-Storm scheduler (Peng et al., *R-Storm: Resource-Aware Scheduling in
//! Storm*, Middleware '15).
//!
//! A topology is a directed graph whose vertices are **components** —
//! either **spouts** (stream sources) or **bolts** (stream transformers) —
//! and whose edges are **streams** consumed under a **grouping** (shuffle,
//! fields, all, global, ...). Each component carries a *parallelism hint*
//! and a per-instance [`ResourceRequest`] mirroring Storm's
//! `setCPULoad` / `setMemoryLoad` user API from §5.2 of the paper.
//!
//! At schedule time every component is instantiated into `parallelism`
//! **tasks** ([`TaskSet`]), which is the unit the scheduler places onto
//! cluster nodes.
//!
//! ## Example
//!
//! ```
//! use rstorm_topology::TopologyBuilder;
//!
//! let mut builder = TopologyBuilder::new("word-count");
//! builder
//!     .set_spout("words", 10)
//!     .set_cpu_load(50.0)
//!     .set_memory_load(1024.0);
//! builder
//!     .set_bolt("count", 5)
//!     .shuffle_grouping("words")
//!     .set_cpu_load(25.0)
//!     .set_memory_load(512.0);
//! let topology = builder.build().unwrap();
//!
//! assert_eq!(topology.components().len(), 2);
//! assert_eq!(topology.total_tasks(), 15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod builder;
mod component;
mod error;
mod grouping;
mod ids;
mod profile;
mod resource;
mod task;
mod topology;
mod traversal;

pub use builder::{BoltDeclarer, SpoutDeclarer, TopologyBuilder};
pub use component::{Component, ComponentKind, InputDeclaration};
pub use error::TopologyError;
pub use grouping::StreamGrouping;
pub use ids::{ComponentId, StreamId, TaskId, TopologyId};
pub use profile::ExecutionProfile;
pub use resource::ResourceRequest;
pub use task::{Executor, ExecutorId, ExecutorSet, Task, TaskSet};
pub use topology::Topology;
pub use traversal::{bfs_component_order, dfs_component_order, TraversalOrder};
