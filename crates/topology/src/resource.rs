//! Per-instance resource requests, mirroring the R-Storm user API (§5.2).
//!
//! The paper models every task's demand as the 3-dimensional vector
//! `A_τ = {m_τ, c_τ, b_τ}` — memory (a *hard* constraint), CPU and
//! bandwidth (*soft* constraints). CPU is expressed in Storm's "point
//! system": 100 points ≈ one full core (§5.2), memory in megabytes, and
//! bandwidth as an abstract demand used in the network-distance term of
//! the node-selection metric.

use std::fmt;

/// Resource demand of a *single instance* (task) of a component.
///
/// Constructed via [`ResourceRequest::new`] or, more commonly, implicitly
/// through the builder's `set_cpu_load` / `set_memory_load` /
/// `set_bandwidth_load` declarer methods, which mirror the Java API calls
/// `setCPULoad(Double)` / `setMemoryLoad(Double)` the paper introduces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceRequest {
    /// CPU demand in points; 100.0 points ≈ 100% of one core.
    pub cpu_points: f64,
    /// Memory demand in megabytes. This is the paper's only *hard*
    /// constraint: a placement must never exceed a node's available memory.
    pub memory_mb: f64,
    /// Bandwidth demand (abstract units). A *soft* constraint; in the
    /// R-Storm distance metric bandwidth is realized as network distance
    /// from the reference node, so this value acts as a scale factor for
    /// how network-sensitive the task is.
    pub bandwidth: f64,
}

impl ResourceRequest {
    /// Default CPU demand Storm assumes when the user gives no hint
    /// (Storm's `topology.component.cpu.pcore.percent` default).
    pub const DEFAULT_CPU_POINTS: f64 = 10.0;
    /// Default per-task on-heap memory Storm assumes when the user gives
    /// no hint (Storm's `topology.component.resources.onheap.memory.mb`).
    pub const DEFAULT_MEMORY_MB: f64 = 128.0;
    /// Default bandwidth demand when the user gives no hint.
    pub const DEFAULT_BANDWIDTH: f64 = 0.0;

    /// Creates a request with explicit values for all three dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or not finite.
    pub fn new(cpu_points: f64, memory_mb: f64, bandwidth: f64) -> Self {
        let r = Self {
            cpu_points,
            memory_mb,
            bandwidth,
        };
        r.validate();
        r
    }

    /// A zero request (consumes nothing). Useful in tests and as the
    /// additive identity for [`ResourceRequest::saturating_add`].
    pub fn zero() -> Self {
        Self {
            cpu_points: 0.0,
            memory_mb: 0.0,
            bandwidth: 0.0,
        }
    }

    /// Returns true if all dimensions are zero.
    pub fn is_zero(&self) -> bool {
        self.cpu_points == 0.0 && self.memory_mb == 0.0 && self.bandwidth == 0.0
    }

    /// Component-wise sum of two requests.
    pub fn saturating_add(&self, other: &Self) -> Self {
        Self {
            cpu_points: self.cpu_points + other.cpu_points,
            memory_mb: self.memory_mb + other.memory_mb,
            bandwidth: self.bandwidth + other.bandwidth,
        }
    }

    /// Scales the request by a non-negative factor (e.g. multiply a
    /// per-instance request by a component's parallelism).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        Self {
            cpu_points: self.cpu_points * factor,
            memory_mb: self.memory_mb * factor,
            bandwidth: self.bandwidth * factor,
        }
    }

    fn validate(&self) {
        for (name, v) in [
            ("cpu_points", self.cpu_points),
            ("memory_mb", self.memory_mb),
            ("bandwidth", self.bandwidth),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "resource dimension `{name}` must be finite and non-negative, got {v}"
            );
        }
    }
}

impl Default for ResourceRequest {
    /// The defaults Storm applies when the topology author supplies no
    /// resource hints.
    fn default() -> Self {
        Self {
            cpu_points: Self::DEFAULT_CPU_POINTS,
            memory_mb: Self::DEFAULT_MEMORY_MB,
            bandwidth: Self::DEFAULT_BANDWIDTH,
        }
    }
}

impl fmt::Display for ResourceRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{cpu: {:.1} pts, mem: {:.1} MB, bw: {:.1}}}",
            self.cpu_points, self.memory_mb, self.bandwidth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_storm_conventions() {
        let r = ResourceRequest::default();
        assert_eq!(r.cpu_points, 10.0);
        assert_eq!(r.memory_mb, 128.0);
        assert_eq!(r.bandwidth, 0.0);
    }

    #[test]
    fn zero_is_additive_identity() {
        let r = ResourceRequest::new(50.0, 1024.0, 3.0);
        let sum = r.saturating_add(&ResourceRequest::zero());
        assert_eq!(sum, r);
        assert!(ResourceRequest::zero().is_zero());
        assert!(!r.is_zero());
    }

    #[test]
    fn add_is_component_wise() {
        let a = ResourceRequest::new(10.0, 100.0, 1.0);
        let b = ResourceRequest::new(5.0, 28.0, 2.0);
        let s = a.saturating_add(&b);
        assert_eq!(s.cpu_points, 15.0);
        assert_eq!(s.memory_mb, 128.0);
        assert_eq!(s.bandwidth, 3.0);
    }

    #[test]
    fn scaled_multiplies_every_dimension() {
        let r = ResourceRequest::new(50.0, 100.0, 2.0).scaled(4.0);
        assert_eq!(r.cpu_points, 200.0);
        assert_eq!(r.memory_mb, 400.0);
        assert_eq!(r.bandwidth, 8.0);
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn negative_cpu_rejected() {
        ResourceRequest::new(-1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn nan_memory_rejected() {
        ResourceRequest::new(1.0, f64::NAN, 0.0);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn negative_scale_rejected() {
        ResourceRequest::default().scaled(-2.0);
    }

    #[test]
    fn display_is_human_readable() {
        let r = ResourceRequest::new(50.0, 1024.0, 0.0);
        assert_eq!(r.to_string(), "{cpu: 50.0 pts, mem: 1024.0 MB, bw: 0.0}");
    }
}
