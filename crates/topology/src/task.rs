//! Task and executor instantiation.
//!
//! A *task* is one parallel instance of a component — the unit R-Storm
//! schedules. An *executor* is a thread that runs one or more tasks of the
//! same component; Storm's default is one task per executor, which is also
//! our default, but [`ExecutorSet::group`] supports packing several.

use crate::ids::{ComponentId, TaskId};
use crate::resource::ResourceRequest;
use crate::topology::Topology;
use std::collections::HashMap;
use std::fmt;

/// One parallel instance of a component.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Task {
    /// Dense, topology-unique task id.
    pub id: TaskId,
    /// The component this task instantiates.
    pub component: ComponentId,
    /// This task's index among its component's tasks (0-based).
    pub instance: u32,
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]#{}",
            self.component,
            self.instance,
            self.id.as_u32()
        )
    }
}

/// The full set of tasks instantiated from a topology, with dense ids in
/// component declaration order.
#[derive(Debug, Clone)]
pub struct TaskSet {
    tasks: Vec<Task>,
    by_component: HashMap<ComponentId, Vec<TaskId>>,
    resources: Vec<ResourceRequest>,
}

impl TaskSet {
    /// Instantiates every component of `topology` into its tasks.
    pub fn instantiate(topology: &Topology) -> Self {
        let mut tasks = Vec::with_capacity(topology.total_tasks() as usize);
        let mut by_component: HashMap<ComponentId, Vec<TaskId>> = HashMap::new();
        let mut resources = Vec::with_capacity(tasks.capacity());
        let mut next = 0u32;
        for component in topology.components() {
            let ids = by_component.entry(component.id().clone()).or_default();
            for instance in 0..component.parallelism() {
                let id = TaskId(next);
                next += 1;
                tasks.push(Task {
                    id,
                    component: component.id().clone(),
                    instance,
                });
                resources.push(*component.resources());
                ids.push(id);
            }
        }
        Self {
            tasks,
            by_component,
            resources,
        }
    }

    /// All tasks in id order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns true if there are no tasks (cannot happen for a validated
    /// topology, which always has a spout with parallelism ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Looks up a task by id.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.index())
    }

    /// The resource demand of a task.
    pub fn resources(&self, id: TaskId) -> Option<&ResourceRequest> {
        self.resources.get(id.index())
    }

    /// Task ids belonging to a component, in instance order.
    pub fn tasks_of(&self, component: &str) -> &[TaskId] {
        self.by_component.get(component).map_or(&[], Vec::as_slice)
    }

    /// Iterates over `(component, tasks)` pairs in arbitrary order.
    pub fn by_component(&self) -> impl Iterator<Item = (&ComponentId, &[TaskId])> {
        self.by_component.iter().map(|(c, t)| (c, t.as_slice()))
    }
}

/// Identifier of an executor (a task-running thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExecutorId(pub u32);

impl fmt::Display for ExecutorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "executor-{}", self.0)
    }
}

/// An executor: a thread running a contiguous run of tasks of one
/// component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Executor {
    /// Dense executor id.
    pub id: ExecutorId,
    /// Component whose tasks this executor runs.
    pub component: ComponentId,
    /// The tasks assigned to this executor (non-empty, same component).
    pub tasks: Vec<TaskId>,
}

/// Tasks grouped into executors.
#[derive(Debug, Clone)]
pub struct ExecutorSet {
    executors: Vec<Executor>,
}

impl ExecutorSet {
    /// Groups a task set into executors with at most `tasks_per_executor`
    /// tasks each (Storm's default is 1).
    ///
    /// # Panics
    ///
    /// Panics if `tasks_per_executor` is zero.
    pub fn group(task_set: &TaskSet, tasks_per_executor: u32) -> Self {
        assert!(tasks_per_executor > 0, "tasks_per_executor must be ≥ 1");
        let mut executors = Vec::new();
        let mut next = 0u32;
        // Iterate components in task-id order for determinism.
        let mut current: Option<(ComponentId, Vec<TaskId>)> = None;
        for task in task_set.tasks() {
            match &mut current {
                Some((component, tasks))
                    if *component == task.component
                        && (tasks.len() as u32) < tasks_per_executor =>
                {
                    tasks.push(task.id);
                }
                _ => {
                    if let Some((component, tasks)) = current.take() {
                        executors.push(Executor {
                            id: ExecutorId(next),
                            component,
                            tasks,
                        });
                        next += 1;
                    }
                    current = Some((task.component.clone(), vec![task.id]));
                }
            }
        }
        if let Some((component, tasks)) = current {
            executors.push(Executor {
                id: ExecutorId(next),
                component,
                tasks,
            });
        }
        Self { executors }
    }

    /// All executors in id order.
    pub fn executors(&self) -> &[Executor] {
        &self.executors
    }

    /// Number of executors.
    pub fn len(&self) -> usize {
        self.executors.len()
    }

    /// Returns true if there are no executors.
    pub fn is_empty(&self) -> bool {
        self.executors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;

    fn topology() -> Topology {
        let mut b = TopologyBuilder::new("t");
        b.set_spout("s", 3).set_cpu_load(30.0);
        b.set_bolt("b1", 2).shuffle_grouping("s");
        b.set_bolt("b2", 4).shuffle_grouping("b1");
        b.build().unwrap()
    }

    #[test]
    fn dense_ids_in_declaration_order() {
        let ts = topology().task_set();
        assert_eq!(ts.len(), 9);
        assert!(!ts.is_empty());
        let ids: Vec<u32> = ts.tasks().iter().map(|t| t.id.as_u32()).collect();
        assert_eq!(ids, (0..9).collect::<Vec<_>>());
        assert_eq!(ts.tasks_of("s").len(), 3);
        assert_eq!(ts.tasks_of("b1"), &[TaskId(3), TaskId(4)]);
        assert_eq!(ts.tasks_of("b2").len(), 4);
        assert_eq!(ts.tasks_of("nope"), &[] as &[TaskId]);
    }

    #[test]
    fn instances_are_zero_based_per_component() {
        let ts = topology().task_set();
        let b2_instances: Vec<u32> = ts
            .tasks()
            .iter()
            .filter(|t| t.component.as_str() == "b2")
            .map(|t| t.instance)
            .collect();
        assert_eq!(b2_instances, vec![0, 1, 2, 3]);
    }

    #[test]
    fn per_task_resources_come_from_component() {
        let ts = topology().task_set();
        assert_eq!(ts.resources(TaskId(0)).unwrap().cpu_points, 30.0);
        assert_eq!(
            ts.resources(TaskId(3)).unwrap().cpu_points,
            ResourceRequest::DEFAULT_CPU_POINTS
        );
        assert!(ts.resources(TaskId(99)).is_none());
    }

    #[test]
    fn one_task_per_executor_by_default() {
        let ts = topology().task_set();
        let es = ExecutorSet::group(&ts, 1);
        assert_eq!(es.len(), 9);
        assert!(es.executors().iter().all(|e| e.tasks.len() == 1));
    }

    #[test]
    fn executors_never_mix_components() {
        let ts = topology().task_set();
        let es = ExecutorSet::group(&ts, 2);
        // s: 3 tasks -> 2 executors; b1: 2 -> 1; b2: 4 -> 2. Total 5.
        assert_eq!(es.len(), 5);
        for e in es.executors() {
            for t in &e.tasks {
                assert_eq!(ts.task(*t).unwrap().component, e.component);
            }
        }
    }

    #[test]
    fn task_display() {
        let ts = topology().task_set();
        assert_eq!(ts.task(TaskId(3)).unwrap().to_string(), "b1[0]#3");
    }
}
