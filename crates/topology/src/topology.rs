//! The validated topology graph.

use crate::component::{Component, InputDeclaration};
use crate::error::TopologyError;
use crate::ids::{ComponentId, StreamId, TopologyId};
use crate::resource::ResourceRequest;
use crate::task::TaskSet;
use std::collections::{HashMap, HashSet};

/// A validated Storm-style topology: a directed graph of spouts and bolts.
///
/// Construct via [`crate::TopologyBuilder`]. A `Topology` is immutable;
/// validation guarantees that every subscription refers to a declared
/// component and stream, that at least one spout exists, that spouts have
/// no inputs and that every bolt has at least one input.
///
/// Unlike some prior schedulers (e.g. the offline scheduler of Aniello et
/// al., which the paper notes is limited to acyclic topologies), cycles
/// among bolts are *allowed* — R-Storm handles them, and so do we.
#[derive(Debug, Clone)]
pub struct Topology {
    id: TopologyId,
    components: Vec<Component>,
    num_workers: Option<u32>,
    max_spout_pending: Option<u32>,
    index: HashMap<ComponentId, usize>,
    /// Edges: producer component -> consumers (with the subscription each
    /// consumer declared).
    downstream: HashMap<ComponentId, Vec<(ComponentId, InputDeclaration)>>,
    /// Streams each component declares (always contains `"default"`).
    declared_streams: HashMap<ComponentId, HashSet<StreamId>>,
}

impl Topology {
    pub(crate) fn from_parts(
        id: TopologyId,
        components: Vec<Component>,
        num_workers: Option<u32>,
        max_spout_pending: Option<u32>,
        declared_streams: HashMap<ComponentId, HashSet<StreamId>>,
    ) -> Result<Self, TopologyError> {
        if id.as_str().is_empty() {
            return Err(TopologyError::EmptyTopologyId);
        }

        let mut index = HashMap::new();
        for (i, c) in components.iter().enumerate() {
            if index.insert(c.id().clone(), i).is_some() {
                return Err(TopologyError::DuplicateComponent(c.id().clone()));
            }
        }

        if !components.iter().any(|c| c.is_spout()) {
            return Err(TopologyError::NoSpout);
        }

        let mut downstream: HashMap<ComponentId, Vec<(ComponentId, InputDeclaration)>> =
            HashMap::new();
        for c in &components {
            if c.is_spout() && !c.inputs().is_empty() {
                return Err(TopologyError::SpoutWithInput(c.id().clone()));
            }
            if !c.is_spout() && c.inputs().is_empty() {
                return Err(TopologyError::DisconnectedBolt(c.id().clone()));
            }
            for input in c.inputs() {
                if !index.contains_key(&input.from) {
                    return Err(TopologyError::UnknownComponent {
                        subscriber: c.id().clone(),
                        missing: input.from.clone(),
                    });
                }
                let streams = declared_streams
                    .get(&input.from)
                    .expect("every declared component has a stream set");
                if !streams.contains(&input.stream) {
                    return Err(TopologyError::UnknownStream {
                        subscriber: c.id().clone(),
                        from: input.from.clone(),
                        stream: input.stream.clone(),
                    });
                }
                downstream
                    .entry(input.from.clone())
                    .or_default()
                    .push((c.id().clone(), input.clone()));
            }
        }

        Ok(Self {
            id,
            components,
            num_workers,
            max_spout_pending,
            index,
            downstream,
            declared_streams,
        })
    }

    /// The number of worker processes the topology asks for (Storm's
    /// `topology.workers`), if configured. Resource-oblivious schedulers
    /// such as the default even scheduler pack all executors into this
    /// many workers; R-Storm decides worker placement from resources and
    /// ignores the hint, as the production Resource Aware Scheduler does.
    pub fn num_workers(&self) -> Option<u32> {
        self.num_workers
    }

    /// The topology's `topology.max.spout.pending` setting, if configured:
    /// the maximum number of in-flight (un-acked) root batches per spout
    /// task, i.e. the backpressure window.
    pub fn max_spout_pending(&self) -> Option<u32> {
        self.max_spout_pending
    }

    /// The topology's identifier.
    pub fn id(&self) -> &TopologyId {
        &self.id
    }

    /// All components in declaration order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Looks up a component by id.
    pub fn component(&self, id: &str) -> Option<&Component> {
        self.index.get(id).map(|&i| &self.components[i])
    }

    /// All spouts, in declaration order.
    pub fn spouts(&self) -> impl Iterator<Item = &Component> {
        self.components.iter().filter(|c| c.is_spout())
    }

    /// All bolts, in declaration order.
    pub fn bolts(&self) -> impl Iterator<Item = &Component> {
        self.components.iter().filter(|c| !c.is_spout())
    }

    /// Components with no downstream consumers — the "output bolts" whose
    /// processing rate defines topology throughput in the paper's
    /// evaluation (§6.2).
    pub fn sinks(&self) -> impl Iterator<Item = &Component> {
        self.components
            .iter()
            .filter(move |c| !self.downstream.contains_key(c.id()))
    }

    /// Consumers of any stream of `id`, with their subscriptions.
    /// Empty if `id` is a sink or unknown.
    pub fn consumers(&self, id: &str) -> &[(ComponentId, InputDeclaration)] {
        self.downstream.get(id).map_or(&[], Vec::as_slice)
    }

    /// Ids of the components directly downstream of `id` (deduplicated,
    /// in subscription order).
    pub fn downstream_ids(&self, id: &str) -> Vec<&ComponentId> {
        let mut seen = HashSet::new();
        self.consumers(id)
            .iter()
            .map(|(c, _)| c)
            .filter(|c| seen.insert(*c))
            .collect()
    }

    /// Ids of the components directly upstream of `id` (deduplicated, in
    /// subscription order).
    pub fn upstream_ids(&self, id: &str) -> Vec<&ComponentId> {
        let mut seen = HashSet::new();
        self.component(id).map_or_else(Vec::new, |c| {
            c.inputs()
                .iter()
                .map(|i| &i.from)
                .filter(|f| seen.insert(*f))
                .collect()
        })
    }

    /// Undirected neighbors of `id`: upstream and downstream components.
    /// This is the neighbor set the paper's BFS traversal (Algorithm 2)
    /// walks.
    pub fn neighbor_ids(&self, id: &str) -> Vec<&ComponentId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for c in self
            .upstream_ids(id)
            .into_iter()
            .chain(self.downstream_ids(id))
        {
            if seen.insert(c) {
                out.push(c);
            }
        }
        out
    }

    /// Streams declared by `id` (always includes `"default"`).
    pub fn declared_streams(&self, id: &str) -> Option<&HashSet<StreamId>> {
        self.declared_streams.get(id)
    }

    /// Total number of tasks across all components.
    pub fn total_tasks(&self) -> u32 {
        self.components.iter().map(Component::parallelism).sum()
    }

    /// Sum of per-task resource demands over all tasks of all components.
    pub fn total_resources(&self) -> ResourceRequest {
        self.components
            .iter()
            .map(Component::total_resources)
            .fold(ResourceRequest::zero(), |acc, r| acc.saturating_add(&r))
    }

    /// Instantiates the task set for this topology (dense task ids in
    /// component declaration order).
    pub fn task_set(&self) -> TaskSet {
        TaskSet::instantiate(self)
    }

    /// Returns true if the component graph (directed) contains a cycle.
    pub fn has_cycle(&self) -> bool {
        // Iterative DFS with colors: 0 = white, 1 = gray, 2 = black.
        let mut color = vec![0u8; self.components.len()];
        for start in 0..self.components.len() {
            if color[start] != 0 {
                continue;
            }
            // Stack of (index, next-child cursor).
            let mut stack = vec![(start, 0usize)];
            color[start] = 1;
            while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
                let id = self.components[node].id().clone();
                let consumers = self.consumers(id.as_str());
                if *cursor < consumers.len() {
                    let (next_id, _) = &consumers[*cursor];
                    *cursor += 1;
                    let next = self.index[next_id];
                    match color[next] {
                        0 => {
                            color[next] = 1;
                            stack.push((next, 0));
                        }
                        1 => return true,
                        _ => {}
                    }
                } else {
                    color[node] = 2;
                    stack.pop();
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;
    use crate::grouping::StreamGrouping;

    fn diamond() -> Topology {
        let mut b = TopologyBuilder::new("diamond");
        b.set_spout("src", 2);
        b.set_bolt("left", 2).shuffle_grouping("src");
        b.set_bolt("right", 2).shuffle_grouping("src");
        b.set_bolt("join", 1)
            .shuffle_grouping("left")
            .shuffle_grouping("right");
        b.build().unwrap()
    }

    #[test]
    fn lookup_and_iteration() {
        let t = diamond();
        assert_eq!(t.id().as_str(), "diamond");
        assert_eq!(t.components().len(), 4);
        assert!(t.component("left").is_some());
        assert!(t.component("missing").is_none());
        assert_eq!(t.spouts().count(), 1);
        assert_eq!(t.bolts().count(), 3);
    }

    #[test]
    fn sinks_are_components_without_consumers() {
        let t = diamond();
        let sinks: Vec<_> = t.sinks().map(|c| c.id().as_str().to_owned()).collect();
        assert_eq!(sinks, vec!["join"]);
    }

    #[test]
    fn adjacency_is_consistent() {
        let t = diamond();
        let down: Vec<_> = t.downstream_ids("src").iter().map(|c| c.as_str()).collect();
        assert_eq!(down, vec!["left", "right"]);
        let up: Vec<_> = t.upstream_ids("join").iter().map(|c| c.as_str()).collect();
        assert_eq!(up, vec!["left", "right"]);
        let n: Vec<_> = t.neighbor_ids("left").iter().map(|c| c.as_str()).collect();
        assert_eq!(n, vec!["src", "join"]);
    }

    #[test]
    fn totals() {
        let t = diamond();
        assert_eq!(t.total_tasks(), 7);
        let r = t.total_resources();
        assert_eq!(r.cpu_points, 7.0 * ResourceRequest::DEFAULT_CPU_POINTS);
        assert_eq!(r.memory_mb, 7.0 * ResourceRequest::DEFAULT_MEMORY_MB);
    }

    #[test]
    fn acyclic_graph_has_no_cycle() {
        assert!(!diamond().has_cycle());
    }

    #[test]
    fn cycle_detected() {
        let mut b = TopologyBuilder::new("cyclic");
        b.set_spout("src", 1);
        b.set_bolt("a", 1)
            .shuffle_grouping("src")
            .shuffle_grouping("b");
        b.set_bolt("b", 1).shuffle_grouping("a");
        let t = b.build().unwrap();
        assert!(t.has_cycle());
    }

    #[test]
    fn unknown_subscription_rejected() {
        let mut b = TopologyBuilder::new("bad");
        b.set_spout("src", 1);
        b.set_bolt("b", 1).shuffle_grouping("ghost");
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::UnknownComponent {
                subscriber: ComponentId::new("b"),
                missing: ComponentId::new("ghost"),
            }
        );
    }

    #[test]
    fn named_stream_subscription_checked() {
        let mut b = TopologyBuilder::new("named");
        b.set_spout("src", 1).declare_stream("errors");
        b.set_bolt("ok", 1)
            .grouping_on_stream("src", "errors", StreamGrouping::Shuffle);
        assert!(b.build().is_ok());

        let mut b = TopologyBuilder::new("named-bad");
        b.set_spout("src", 1);
        b.set_bolt("b", 1)
            .grouping_on_stream("src", "errors", StreamGrouping::Shuffle);
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::UnknownStream { .. }
        ));
    }

    #[test]
    fn spout_required() {
        let mut b = TopologyBuilder::new("no-spout");
        b.set_bolt("lonely", 1).shuffle_grouping("lonely");
        assert!(matches!(
            b.build().unwrap_err(),
            // `lonely` subscribing to itself: the bolt exists, so the
            // missing-spout check fires first or the self-edge is fine
            // structurally; either way the build fails.
            TopologyError::NoSpout | TopologyError::UnknownComponent { .. }
        ));
    }

    #[test]
    fn disconnected_bolt_rejected() {
        let mut b = TopologyBuilder::new("disc");
        b.set_spout("src", 1);
        b.set_bolt("island", 1);
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::DisconnectedBolt(ComponentId::new("island"))
        );
    }
}
