//! Errors raised while constructing or validating a topology.

use crate::ids::{ComponentId, StreamId};
use std::error::Error;
use std::fmt;

/// Why a topology failed to validate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// Two components were declared with the same id.
    DuplicateComponent(ComponentId),
    /// A bolt subscribed to a component that was never declared.
    UnknownComponent {
        /// The subscribing bolt.
        subscriber: ComponentId,
        /// The missing upstream component id.
        missing: ComponentId,
    },
    /// A bolt subscribed to a stream its upstream component never declares.
    UnknownStream {
        /// The subscribing bolt.
        subscriber: ComponentId,
        /// The upstream component.
        from: ComponentId,
        /// The missing stream id.
        stream: StreamId,
    },
    /// The topology has no spout, so no data could ever flow.
    NoSpout,
    /// A spout declared an input subscription (spouts are sources).
    SpoutWithInput(ComponentId),
    /// A bolt has no inputs, so it could never receive a tuple.
    DisconnectedBolt(ComponentId),
    /// The topology was declared with an empty id.
    EmptyTopologyId,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateComponent(id) => {
                write!(f, "component `{id}` declared more than once")
            }
            Self::UnknownComponent {
                subscriber,
                missing,
            } => write!(
                f,
                "bolt `{subscriber}` subscribes to undeclared component `{missing}`"
            ),
            Self::UnknownStream {
                subscriber,
                from,
                stream,
            } => write!(
                f,
                "bolt `{subscriber}` subscribes to stream `{stream}` which `{from}` never declares"
            ),
            Self::NoSpout => f.write_str("topology has no spout"),
            Self::SpoutWithInput(id) => {
                write!(f, "spout `{id}` must not declare input subscriptions")
            }
            Self::DisconnectedBolt(id) => {
                write!(f, "bolt `{id}` has no input subscriptions")
            }
            Self::EmptyTopologyId => f.write_str("topology id must not be empty"),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = TopologyError::DuplicateComponent(ComponentId::new("x"));
        assert!(e.to_string().contains("`x`"));

        let e = TopologyError::UnknownComponent {
            subscriber: ComponentId::new("b"),
            missing: ComponentId::new("ghost"),
        };
        assert!(e.to_string().contains("ghost"));

        let e = TopologyError::UnknownStream {
            subscriber: ComponentId::new("b"),
            from: ComponentId::new("s"),
            stream: StreamId::new("errs"),
        };
        assert!(e.to_string().contains("errs"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<TopologyError>();
    }
}
