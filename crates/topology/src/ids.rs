//! Strongly typed identifiers for topology entities.
//!
//! Storm identifies components and streams by user-chosen strings and tasks
//! by dense integers assigned at schedule time. We mirror that: string-backed
//! newtypes for [`TopologyId`], [`ComponentId`] and [`StreamId`], and a dense
//! integer newtype for [`TaskId`].

use std::borrow::Borrow;
use std::fmt;

macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(String);

        impl $name {
            /// Creates a new identifier from anything string-like.
            pub fn new(id: impl Into<String>) -> Self {
                Self(id.into())
            }

            /// Returns the identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self(s.to_owned())
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self(s)
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

string_id! {
    /// Identifier of a whole topology (a submitted application).
    TopologyId
}

string_id! {
    /// Identifier of a component (spout or bolt) within a topology.
    ComponentId
}

string_id! {
    /// Identifier of a declared output stream.
    ///
    /// Storm gives every component an implicit `"default"` stream; the same
    /// convention is used here (see [`StreamId::default_stream`]).
    StreamId
}

impl StreamId {
    /// The implicit stream every component emits on unless it declares
    /// named streams, identical to Storm's `"default"`.
    pub fn default_stream() -> Self {
        Self("default".to_owned())
    }
}

/// Dense integer identifier of a task — one parallel instance of a component.
///
/// Task ids are assigned contiguously per topology in builder insertion
/// order, matching Storm's dense task numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Returns the raw integer value.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the raw value widened to `usize`, handy for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task-{}", self.0)
    }
}

impl From<u32> for TaskId {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn string_ids_display_and_compare() {
        let a = ComponentId::new("spout-1");
        let b: ComponentId = "spout-1".into();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "spout-1");
        assert_eq!(a.as_str(), "spout-1");
    }

    #[test]
    fn string_ids_borrow_str_for_map_lookup() {
        let mut m: HashMap<ComponentId, u32> = HashMap::new();
        m.insert(ComponentId::new("b"), 7);
        // Borrow<str> lets us look up by &str without allocating.
        assert_eq!(m.get("b"), Some(&7));
        assert_eq!(m.get("missing"), None);
    }

    #[test]
    fn default_stream_matches_storm_convention() {
        assert_eq!(StreamId::default_stream().as_str(), "default");
    }

    #[test]
    fn task_ids_are_ordered_integers() {
        let t0 = TaskId(0);
        let t9 = TaskId(9);
        assert!(t0 < t9);
        assert_eq!(t9.index(), 9);
        assert_eq!(t9.to_string(), "task-9");
        assert_eq!(TaskId::from(3).as_u32(), 3);
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; the test documents the intent.
        let c = ComponentId::new("x");
        let s = StreamId::new("x");
        assert_eq!(c.as_str(), s.as_str());
    }
}
