//! Stream groupings: how tuples emitted on a stream are partitioned among
//! the tasks of a consuming component.
//!
//! These mirror Storm's built-in groupings. The simulator (`rstorm-sim`)
//! uses them to route tuples between scheduled tasks, which is what makes
//! the network-bound experiments sensitive to placement.

use std::fmt;

/// How a consuming component's tasks partition an input stream.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StreamGrouping {
    /// Tuples are distributed uniformly at random across consumer tasks
    /// (Storm's default and most common grouping).
    Shuffle,
    /// Tuples with equal values in the named fields go to the same consumer
    /// task (hash partitioning), e.g. for per-key aggregation.
    Fields(Vec<String>),
    /// Every tuple is replicated to *all* consumer tasks.
    All,
    /// Every tuple goes to the single consumer task with the lowest id.
    Global,
    /// Prefer a consumer task in the same worker process as the producer;
    /// fall back to shuffle otherwise. This is the grouping whose benefit
    /// R-Storm's colocation amplifies.
    LocalOrShuffle,
}

impl StreamGrouping {
    /// Hash partitioning on the given field names.
    pub fn fields<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::Fields(names.into_iter().map(Into::into).collect())
    }

    /// Returns true if the grouping replicates each tuple to every consumer
    /// task (i.e. fan-out factor equals consumer parallelism).
    pub fn replicates(&self) -> bool {
        matches!(self, Self::All)
    }

    /// Returns true if the grouping is placement-sensitive, i.e. a good
    /// scheduler can reduce network traffic by colocating producer and
    /// consumer tasks.
    pub fn placement_sensitive(&self) -> bool {
        matches!(self, Self::Shuffle | Self::LocalOrShuffle)
    }
}

impl fmt::Display for StreamGrouping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shuffle => f.write_str("shuffle"),
            Self::Fields(names) => write!(f, "fields({})", names.join(",")),
            Self::All => f.write_str("all"),
            Self::Global => f.write_str("global"),
            Self::LocalOrShuffle => f.write_str("local-or-shuffle"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_constructor_collects_names() {
        let g = StreamGrouping::fields(["word", "count"]);
        assert_eq!(
            g,
            StreamGrouping::Fields(vec!["word".to_owned(), "count".to_owned()])
        );
        assert_eq!(g.to_string(), "fields(word,count)");
    }

    #[test]
    fn only_all_replicates() {
        assert!(StreamGrouping::All.replicates());
        for g in [
            StreamGrouping::Shuffle,
            StreamGrouping::Global,
            StreamGrouping::LocalOrShuffle,
            StreamGrouping::fields(["k"]),
        ] {
            assert!(!g.replicates(), "{g} should not replicate");
        }
    }

    #[test]
    fn shuffle_like_groupings_are_placement_sensitive() {
        assert!(StreamGrouping::Shuffle.placement_sensitive());
        assert!(StreamGrouping::LocalOrShuffle.placement_sensitive());
        assert!(!StreamGrouping::fields(["k"]).placement_sensitive());
        assert!(!StreamGrouping::Global.placement_sensitive());
    }

    #[test]
    fn display_forms() {
        assert_eq!(StreamGrouping::Shuffle.to_string(), "shuffle");
        assert_eq!(StreamGrouping::All.to_string(), "all");
        assert_eq!(StreamGrouping::Global.to_string(), "global");
        assert_eq!(
            StreamGrouping::LocalOrShuffle.to_string(),
            "local-or-shuffle"
        );
    }
}
