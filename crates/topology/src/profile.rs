//! Execution profiles: how a component behaves at run time.
//!
//! Apache Storm learns these characteristics implicitly by executing user
//! code; our substitution substrate (`rstorm-sim`) needs them declared.
//! A profile describes the per-tuple CPU cost, the fan-out ratio and the
//! emitted tuple size — exactly the knobs the paper turns to make its
//! micro-benchmarks *network-bound* ("very little processing at each
//! component", §6.3.1) or *computation-time-bound* ("a significant amount
//! of arbitrary processing", §6.3.2).

/// Runtime behaviour of one component instance, consumed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionProfile {
    /// CPU milliseconds consumed per input tuple when running alone on a
    /// full core. For spouts this is the cost of producing one tuple.
    pub work_ms_per_tuple: f64,
    /// Average number of tuples emitted downstream per input tuple
    /// (per output stream subscription). 1.0 = pass-through, 0.0 = sink,
    /// >1.0 = splitter.
    pub emit_factor: f64,
    /// Size in bytes of each emitted tuple (drives network transfer cost).
    pub tuple_bytes: u32,
    /// For spouts: the external source's arrival rate in tuples per
    /// second per task, if the source is rate-limited (a Kafka partition,
    /// an event feed). `None` means the spout emits as fast as it can —
    /// the micro-benchmark behaviour ("a Storm topology executes as fast
    /// as it can", §6.3). Ignored for bolts.
    pub max_rate_tuples_per_sec: Option<f64>,
}

impl ExecutionProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `work_ms_per_tuple` or `emit_factor` is negative or not
    /// finite.
    pub fn new(work_ms_per_tuple: f64, emit_factor: f64, tuple_bytes: u32) -> Self {
        assert!(
            work_ms_per_tuple.is_finite() && work_ms_per_tuple >= 0.0,
            "work_ms_per_tuple must be finite and non-negative, got {work_ms_per_tuple}"
        );
        assert!(
            emit_factor.is_finite() && emit_factor >= 0.0,
            "emit_factor must be finite and non-negative, got {emit_factor}"
        );
        Self {
            work_ms_per_tuple,
            emit_factor,
            tuple_bytes,
            max_rate_tuples_per_sec: None,
        }
    }

    /// Limits the source rate to `tuples_per_sec` per task (spouts only).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive.
    pub fn with_max_rate(mut self, tuples_per_sec: f64) -> Self {
        assert!(
            tuples_per_sec.is_finite() && tuples_per_sec > 0.0,
            "max rate must be positive, got {tuples_per_sec}"
        );
        self.max_rate_tuples_per_sec = Some(tuples_per_sec);
        self
    }

    /// A profile doing negligible work and forwarding every tuple —
    /// the paper's network-bound configuration.
    pub fn network_bound(tuple_bytes: u32) -> Self {
        Self::new(0.01, 1.0, tuple_bytes)
    }

    /// A profile doing heavy per-tuple processing — the paper's
    /// computation-time-bound configuration.
    pub fn cpu_bound(work_ms_per_tuple: f64, tuple_bytes: u32) -> Self {
        Self::new(work_ms_per_tuple, 1.0, tuple_bytes)
    }

    /// Marks the component as a sink: it consumes tuples but emits nothing.
    pub fn into_sink(mut self) -> Self {
        self.emit_factor = 0.0;
        self
    }

    /// Returns true if this component never emits downstream.
    pub fn is_sink(&self) -> bool {
        self.emit_factor == 0.0
    }
}

impl Default for ExecutionProfile {
    /// A light pass-through profile (0.05 ms/tuple, ratio 1.0, 100-byte
    /// tuples) — a reasonable stand-in for a trivial bolt.
    fn default() -> Self {
        Self {
            work_ms_per_tuple: 0.05,
            emit_factor: 1.0,
            tuple_bytes: 100,
            max_rate_tuples_per_sec: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_bound_profile_is_cheap() {
        let p = ExecutionProfile::network_bound(512);
        assert!(p.work_ms_per_tuple <= 0.01);
        assert_eq!(p.emit_factor, 1.0);
        assert_eq!(p.tuple_bytes, 512);
    }

    #[test]
    fn cpu_bound_profile_keeps_work() {
        let p = ExecutionProfile::cpu_bound(5.0, 100);
        assert_eq!(p.work_ms_per_tuple, 5.0);
    }

    #[test]
    fn sink_conversion() {
        let p = ExecutionProfile::default().into_sink();
        assert!(p.is_sink());
        assert!(!ExecutionProfile::default().is_sink());
    }

    #[test]
    fn rate_limit_builder() {
        let p = ExecutionProfile::new(0.1, 1.0, 100).with_max_rate(2_000.0);
        assert_eq!(p.max_rate_tuples_per_sec, Some(2_000.0));
        assert_eq!(ExecutionProfile::default().max_rate_tuples_per_sec, None);
    }

    #[test]
    #[should_panic(expected = "max rate")]
    fn zero_rate_rejected() {
        ExecutionProfile::default().with_max_rate(0.0);
    }

    #[test]
    #[should_panic(expected = "work_ms_per_tuple")]
    fn negative_work_rejected() {
        ExecutionProfile::new(-1.0, 1.0, 10);
    }

    #[test]
    #[should_panic(expected = "emit_factor")]
    fn nan_emit_rejected() {
        ExecutionProfile::new(1.0, f64::NAN, 10);
    }
}
