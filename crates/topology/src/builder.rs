//! Fluent topology construction, mirroring Storm's `TopologyBuilder`.
//!
//! The declarer API reproduces the paper's user-facing resource calls
//! (§5.2):
//!
//! ```text
//! SpoutDeclarer s1 = builder.setSpout("word", new TestWordSpout(), 10);
//! s1.setMemoryLoad(1024.0);
//! s1.setCPULoad(50.0);
//! ```
//!
//! becomes
//!
//! ```
//! use rstorm_topology::TopologyBuilder;
//! let mut builder = TopologyBuilder::new("example");
//! builder
//!     .set_spout("word", 10)
//!     .set_memory_load(1024.0)
//!     .set_cpu_load(50.0);
//! builder.set_bolt("exclaim", 3).shuffle_grouping("word");
//! let topology = builder.build().unwrap();
//! assert_eq!(topology.total_tasks(), 13);
//! ```

use crate::component::{Component, ComponentKind, InputDeclaration};
use crate::error::TopologyError;
use crate::grouping::StreamGrouping;
use crate::ids::{ComponentId, StreamId, TopologyId};
use crate::profile::ExecutionProfile;
use crate::topology::Topology;
use std::collections::{HashMap, HashSet};

/// Builder for [`Topology`] values.
#[derive(Debug)]
pub struct TopologyBuilder {
    id: TopologyId,
    components: Vec<Component>,
    num_workers: Option<u32>,
    max_spout_pending: Option<u32>,
    declared_streams: HashMap<ComponentId, HashSet<StreamId>>,
}

impl TopologyBuilder {
    /// Starts building a topology with the given id.
    pub fn new(id: impl Into<TopologyId>) -> Self {
        Self {
            id: id.into(),
            components: Vec::new(),
            num_workers: None,
            max_spout_pending: None,
            declared_streams: HashMap::new(),
        }
    }

    /// Sets the number of worker processes (Storm's `topology.workers`).
    /// Consumed by resource-oblivious schedulers; R-Storm derives worker
    /// placement from resources instead.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn set_num_workers(&mut self, workers: u32) -> &mut Self {
        assert!(workers > 0, "a topology needs at least one worker");
        self.num_workers = Some(workers);
        self
    }

    /// Declares a spout with a parallelism hint and returns a declarer for
    /// setting its resources, profile and named streams.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn set_spout(&mut self, id: impl Into<ComponentId>, parallelism: u32) -> SpoutDeclarer<'_> {
        let index = self.push_component(id, ComponentKind::Spout, parallelism);
        SpoutDeclarer {
            builder: self,
            index,
        }
    }

    /// Declares a bolt with a parallelism hint and returns a declarer for
    /// setting its resources, profile, named streams and input groupings.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn set_bolt(&mut self, id: impl Into<ComponentId>, parallelism: u32) -> BoltDeclarer<'_> {
        let index = self.push_component(id, ComponentKind::Bolt, parallelism);
        BoltDeclarer {
            builder: self,
            index,
        }
    }

    /// Sets `topology.max.spout.pending`: the maximum number of in-flight
    /// (un-acked) root batches per spout task.
    ///
    /// # Panics
    ///
    /// Panics if `pending` is zero.
    pub fn set_max_spout_pending(&mut self, pending: u32) -> &mut Self {
        assert!(pending > 0, "max.spout.pending must be at least 1");
        self.max_spout_pending = Some(pending);
        self
    }

    /// Validates and finalizes the topology.
    pub fn build(self) -> Result<Topology, TopologyError> {
        Topology::from_parts(
            self.id,
            self.components,
            self.num_workers,
            self.max_spout_pending,
            self.declared_streams,
        )
    }

    fn push_component(
        &mut self,
        id: impl Into<ComponentId>,
        kind: ComponentKind,
        parallelism: u32,
    ) -> usize {
        let id = id.into();
        // Every component implicitly declares the default stream.
        self.declared_streams
            .entry(id.clone())
            .or_default()
            .insert(StreamId::default_stream());
        self.components.push(Component::new(id, kind, parallelism));
        self.components.len() - 1
    }
}

macro_rules! declarer_common {
    ($name:ident) => {
        impl $name<'_> {
            /// Sets the CPU demand, in points, of *one instance* of this
            /// component (100 points ≈ one core). Mirrors `setCPULoad`.
            pub fn set_cpu_load(&mut self, points: f64) -> &mut Self {
                assert!(
                    points.is_finite() && points >= 0.0,
                    "CPU load must be finite and non-negative, got {points}"
                );
                self.component_mut().resources_mut().cpu_points = points;
                self
            }

            /// Sets the memory demand, in megabytes, of *one instance* of
            /// this component. Mirrors `setMemoryLoad`. Memory is the hard
            /// constraint of the R-Storm model.
            pub fn set_memory_load(&mut self, megabytes: f64) -> &mut Self {
                assert!(
                    megabytes.is_finite() && megabytes >= 0.0,
                    "memory load must be finite and non-negative, got {megabytes}"
                );
                self.component_mut().resources_mut().memory_mb = megabytes;
                self
            }

            /// Sets the bandwidth demand (abstract units) of one instance.
            pub fn set_bandwidth_load(&mut self, bandwidth: f64) -> &mut Self {
                assert!(
                    bandwidth.is_finite() && bandwidth >= 0.0,
                    "bandwidth load must be finite and non-negative, got {bandwidth}"
                );
                self.component_mut().resources_mut().bandwidth = bandwidth;
                self
            }

            /// Sets the runtime execution profile used by the simulator.
            pub fn set_profile(&mut self, profile: ExecutionProfile) -> &mut Self {
                self.component_mut().set_profile(profile);
                self
            }

            /// Declares an additional named output stream.
            pub fn declare_stream(&mut self, stream: impl Into<StreamId>) -> &mut Self {
                let id = self.component_mut().id().clone();
                self.builder
                    .declared_streams
                    .entry(id)
                    .or_default()
                    .insert(stream.into());
                self
            }

            fn component_mut(&mut self) -> &mut Component {
                &mut self.builder.components[self.index]
            }
        }
    };
}

/// Declarer returned by [`TopologyBuilder::set_spout`].
#[derive(Debug)]
pub struct SpoutDeclarer<'a> {
    builder: &'a mut TopologyBuilder,
    index: usize,
}

declarer_common!(SpoutDeclarer);

/// Declarer returned by [`TopologyBuilder::set_bolt`].
#[derive(Debug)]
pub struct BoltDeclarer<'a> {
    builder: &'a mut TopologyBuilder,
    index: usize,
}

declarer_common!(BoltDeclarer);

impl BoltDeclarer<'_> {
    /// Subscribes to `from`'s default stream with shuffle grouping.
    pub fn shuffle_grouping(&mut self, from: impl Into<ComponentId>) -> &mut Self {
        self.grouping(from, StreamGrouping::Shuffle)
    }

    /// Subscribes with hash partitioning on the named fields.
    pub fn fields_grouping<I, S>(&mut self, from: impl Into<ComponentId>, fields: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.grouping(from, StreamGrouping::fields(fields))
    }

    /// Subscribes with full replication to every task.
    pub fn all_grouping(&mut self, from: impl Into<ComponentId>) -> &mut Self {
        self.grouping(from, StreamGrouping::All)
    }

    /// Subscribes routing every tuple to the lowest-id task.
    pub fn global_grouping(&mut self, from: impl Into<ComponentId>) -> &mut Self {
        self.grouping(from, StreamGrouping::Global)
    }

    /// Subscribes preferring a local (same worker) consumer task.
    pub fn local_or_shuffle_grouping(&mut self, from: impl Into<ComponentId>) -> &mut Self {
        self.grouping(from, StreamGrouping::LocalOrShuffle)
    }

    /// Subscribes to `from`'s default stream with an explicit grouping.
    pub fn grouping(
        &mut self,
        from: impl Into<ComponentId>,
        grouping: StreamGrouping,
    ) -> &mut Self {
        self.component_mut()
            .add_input(InputDeclaration::new(from, grouping));
        self
    }

    /// Subscribes to a named stream of `from` with an explicit grouping.
    pub fn grouping_on_stream(
        &mut self,
        from: impl Into<ComponentId>,
        stream: impl Into<StreamId>,
        grouping: StreamGrouping,
    ) -> &mut Self {
        self.component_mut()
            .add_input(InputDeclaration::on_stream(from, stream, grouping));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceRequest;

    #[test]
    fn paper_usage_example() {
        // The exact scenario from §5.2 of the paper.
        let mut builder = TopologyBuilder::new("paper");
        builder
            .set_spout("word", 10)
            .set_memory_load(1024.0)
            .set_cpu_load(50.0);
        builder.set_bolt("sink", 1).shuffle_grouping("word");
        let t = builder.build().unwrap();
        let word = t.component("word").unwrap();
        assert_eq!(
            *word.resources(),
            ResourceRequest::new(50.0, 1024.0, ResourceRequest::DEFAULT_BANDWIDTH)
        );
        assert_eq!(word.parallelism(), 10);
    }

    #[test]
    fn chained_groupings_accumulate() {
        let mut b = TopologyBuilder::new("multi-input");
        b.set_spout("s1", 1);
        b.set_spout("s2", 1);
        b.set_bolt("join", 2)
            .fields_grouping("s1", ["key"])
            .all_grouping("s2");
        let t = b.build().unwrap();
        let join = t.component("join").unwrap();
        assert_eq!(join.inputs().len(), 2);
        assert_eq!(join.inputs()[0].grouping, StreamGrouping::fields(["key"]));
        assert_eq!(join.inputs()[1].grouping, StreamGrouping::All);
    }

    #[test]
    fn duplicate_component_rejected_at_build() {
        let mut b = TopologyBuilder::new("dup");
        b.set_spout("x", 1);
        b.set_spout("x", 2);
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::DuplicateComponent(ComponentId::new("x"))
        );
    }

    #[test]
    fn profile_is_attached() {
        let mut b = TopologyBuilder::new("prof");
        b.set_spout("s", 1)
            .set_profile(ExecutionProfile::cpu_bound(7.5, 64));
        b.set_bolt("b", 1).shuffle_grouping("s");
        let t = b.build().unwrap();
        assert_eq!(t.component("s").unwrap().profile().work_ms_per_tuple, 7.5);
    }

    #[test]
    fn empty_topology_id_rejected() {
        let mut b = TopologyBuilder::new("");
        b.set_spout("s", 1);
        assert_eq!(b.build().unwrap_err(), TopologyError::EmptyTopologyId);
    }

    #[test]
    #[should_panic(expected = "CPU load")]
    fn negative_cpu_load_rejected() {
        let mut b = TopologyBuilder::new("neg");
        b.set_spout("s", 1).set_cpu_load(-5.0);
    }
}
