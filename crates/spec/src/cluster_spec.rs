//! Parsing and serializing cluster specifications.

use crate::{attr_f64, parse_attrs, strip_comment, SpecError};
use rstorm_cluster::{Cluster, ClusterBuilder, ResourceCapacity};

/// Parses a cluster specification (see the crate docs for the format).
pub fn parse_cluster(text: &str) -> Result<Cluster, SpecError> {
    let mut seen_header = false;
    let mut current_rack: Option<String> = None;
    let mut builder = ClusterBuilder::new();
    let mut nodes = 0usize;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts[0] {
            "cluster" => {
                seen_header = true;
            }
            "rack" => {
                let name = parts.get(1).ok_or_else(|| SpecError {
                    line: line_no,
                    message: "rack needs a name".into(),
                })?;
                current_rack = Some((*name).to_owned());
            }
            "node" => {
                let rack = current_rack.clone().ok_or_else(|| SpecError {
                    line: line_no,
                    message: "node before any rack".into(),
                })?;
                let name = parts.get(1).ok_or_else(|| SpecError {
                    line: line_no,
                    message: "node needs a name".into(),
                })?;
                let attrs = parse_attrs(&parts[2..], line_no)?;
                for key in attrs.keys() {
                    if !matches!(key.as_str(), "cpu" | "mem" | "bandwidth" | "slots") {
                        return Err(SpecError {
                            line: line_no,
                            message: format!("unknown attribute `{key}`"),
                        });
                    }
                }
                let capacity = ResourceCapacity::new(
                    attr_f64(&attrs, "cpu", 100.0, line_no)?,
                    attr_f64(&attrs, "mem", 4096.0, line_no)?,
                    attr_f64(&attrs, "bandwidth", 100.0, line_no)?,
                );
                let slots = attr_f64(&attrs, "slots", 4.0, line_no)? as u16;
                if slots == 0 {
                    return Err(SpecError {
                        line: line_no,
                        message: "slots must be at least 1".into(),
                    });
                }
                builder = builder.add_node((*name).to_owned(), rack, capacity, slots);
                nodes += 1;
            }
            other => {
                return Err(SpecError {
                    line: line_no,
                    message: format!("unknown directive `{other}`"),
                })
            }
        }
    }

    if !seen_header {
        return Err(SpecError {
            line: 1,
            message: "missing `cluster` header".into(),
        });
    }
    if nodes == 0 {
        return Err(SpecError {
            line: 1,
            message: "cluster has no nodes".into(),
        });
    }
    builder.build().map_err(|e| SpecError {
        line: 1,
        message: e.to_string(),
    })
}

/// Serializes a cluster back to spec text (round-trips through
/// [`parse_cluster`]).
pub fn cluster_to_spec(cluster: &Cluster) -> String {
    let mut out = String::from("cluster\n");
    for rack in cluster.racks() {
        out.push_str(&format!("rack {rack}\n"));
        for node_id in cluster.rack_nodes(rack.as_str()) {
            let node = cluster.node(node_id.as_str()).expect("listed node exists");
            let c = node.capacity();
            out.push_str(&format!(
                "  node {} cpu={:?} mem={:?} bandwidth={:?} slots={}\n",
                node.id(),
                c.cpu_points,
                c.memory_mb,
                c.bandwidth,
                node.slots().len(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_RACKS: &str = "\
cluster
rack rack-0
  node node-0 cpu=100 mem=2048 slots=4
  node node-1 cpu=100 mem=2048 slots=4
rack rack-1
  node node-2 cpu=400 mem=8192 slots=2
";

    #[test]
    fn parses_the_doc_example() {
        let c = parse_cluster(TWO_RACKS).unwrap();
        assert_eq!(c.nodes().len(), 3);
        assert_eq!(c.racks().len(), 2);
        assert_eq!(c.rack_of("node-2").unwrap().as_str(), "rack-1");
        let big = c.node("node-2").unwrap();
        assert_eq!(big.capacity().cpu_points, 400.0);
        assert_eq!(big.slots().len(), 2);
    }

    #[test]
    fn roundtrips() {
        let c = parse_cluster(TWO_RACKS).unwrap();
        let spec = cluster_to_spec(&c);
        let c2 = parse_cluster(&spec).unwrap();
        assert_eq!(cluster_to_spec(&c2), spec);
        assert_eq!(c2.nodes().len(), 3);
    }

    #[test]
    fn errors() {
        let cases = [
            ("rack r\n  node n\n", "missing `cluster` header"),
            ("cluster\nnode n\n", "node before any rack"),
            ("cluster\nrack r\n", "no nodes"),
            ("cluster\nrack r\n  node n slots=0\n", "at least 1"),
            ("cluster\nrack r\n  node n wat=4\n", "unknown attribute"),
            ("cluster\nwat\n", "unknown directive"),
            (
                "cluster\nrack r\n  node n\n  node n\n",
                "declared more than once",
            ),
        ];
        for (text, expected) in cases {
            let err = parse_cluster(text).unwrap_err();
            assert!(
                err.message.contains(expected),
                "{text:?}: got {:?}",
                err.message
            );
        }
    }

    #[test]
    fn defaults() {
        let c = parse_cluster("cluster\nrack r\n  node n\n").unwrap();
        let n = c.node("n").unwrap();
        assert_eq!(n.capacity().cpu_points, 100.0);
        assert_eq!(n.capacity().memory_mb, 4096.0);
        assert_eq!(n.slots().len(), 4);
    }
}
