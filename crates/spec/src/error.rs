//! Spec parse errors.

use std::error::Error;
use std::fmt;

/// A specification parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.message)
    }
}

impl Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_line() {
        let e = SpecError {
            line: 3,
            message: "oops".into(),
        };
        assert_eq!(e.to_string(), "spec line 3: oops");
    }
}
