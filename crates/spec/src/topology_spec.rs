//! Parsing and serializing topology specifications.

use crate::{attr_f64, parse_attrs, strip_comment, SpecError};
use rstorm_topology::{ExecutionProfile, StreamGrouping, Topology, TopologyBuilder};

#[derive(Debug)]
struct PendingComponent {
    is_spout: bool,
    name: String,
    parallelism: u32,
    cpu: f64,
    mem: f64,
    bandwidth: f64,
    profile: ExecutionProfile,
    subscriptions: Vec<(String, StreamGrouping)>,
    line: usize,
}

/// Parses a topology specification (see the crate docs for the format).
pub fn parse_topology(text: &str) -> Result<Topology, SpecError> {
    let mut name: Option<String> = None;
    let mut workers: Option<u32> = None;
    let mut max_pending: Option<u32> = None;
    let mut components: Vec<PendingComponent> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts[0] {
            "topology" => {
                let id = parts.get(1).ok_or_else(|| SpecError {
                    line: line_no,
                    message: "topology needs a name".into(),
                })?;
                name = Some((*id).to_owned());
            }
            "workers" => {
                workers = Some(parse_u32(parts.get(1), "workers", line_no)?);
            }
            "max-spout-pending" => {
                max_pending = Some(parse_u32(parts.get(1), "max-spout-pending", line_no)?);
            }
            "spout" | "bolt" => {
                let is_spout = parts[0] == "spout";
                let cname = parts.get(1).ok_or_else(|| SpecError {
                    line: line_no,
                    message: format!("{} needs a name", parts[0]),
                })?;
                let attrs = parse_attrs(&parts[2..], line_no)?;
                for key in attrs.keys() {
                    if !matches!(
                        key.as_str(),
                        "parallelism"
                            | "cpu"
                            | "mem"
                            | "bandwidth"
                            | "work-ms"
                            | "emit"
                            | "bytes"
                            | "rate"
                    ) {
                        return Err(SpecError {
                            line: line_no,
                            message: format!("unknown attribute `{key}`"),
                        });
                    }
                }
                let parallelism = attr_f64(&attrs, "parallelism", 1.0, line_no)? as u32;
                if parallelism == 0 {
                    return Err(SpecError {
                        line: line_no,
                        message: "parallelism must be at least 1".into(),
                    });
                }
                let mut profile = ExecutionProfile::new(
                    attr_f64(&attrs, "work-ms", 0.05, line_no)?,
                    attr_f64(&attrs, "emit", 1.0, line_no)?,
                    attr_f64(&attrs, "bytes", 100.0, line_no)? as u32,
                );
                if let Some(rate) = attrs.get("rate") {
                    let rate: f64 = rate.parse().map_err(|_| SpecError {
                        line: line_no,
                        message: format!("invalid number for `rate`: `{rate}`"),
                    })?;
                    profile = profile.with_max_rate(rate);
                }
                components.push(PendingComponent {
                    is_spout,
                    name: (*cname).to_owned(),
                    parallelism,
                    cpu: attr_f64(&attrs, "cpu", 10.0, line_no)?,
                    mem: attr_f64(&attrs, "mem", 128.0, line_no)?,
                    bandwidth: attr_f64(&attrs, "bandwidth", 0.0, line_no)?,
                    profile,
                    subscriptions: Vec::new(),
                    line: line_no,
                });
            }
            "subscribe" => {
                let component = components.last_mut().ok_or_else(|| SpecError {
                    line: line_no,
                    message: "subscribe before any component".into(),
                })?;
                if component.is_spout {
                    return Err(SpecError {
                        line: line_no,
                        message: "spouts cannot subscribe".into(),
                    });
                }
                let from = parts.get(1).ok_or_else(|| SpecError {
                    line: line_no,
                    message: "subscribe needs a source component".into(),
                })?;
                let grouping = match parts.get(2).copied() {
                    Some("shuffle") | None => StreamGrouping::Shuffle,
                    Some("all") => StreamGrouping::All,
                    Some("global") => StreamGrouping::Global,
                    Some("local-or-shuffle") => StreamGrouping::LocalOrShuffle,
                    Some("fields") => {
                        let fields = parts.get(3).ok_or_else(|| SpecError {
                            line: line_no,
                            message: "fields grouping needs field names".into(),
                        })?;
                        StreamGrouping::fields(fields.split(','))
                    }
                    Some(other) => {
                        return Err(SpecError {
                            line: line_no,
                            message: format!("unknown grouping `{other}`"),
                        })
                    }
                };
                component.subscriptions.push(((*from).to_owned(), grouping));
            }
            other => {
                return Err(SpecError {
                    line: line_no,
                    message: format!("unknown directive `{other}`"),
                })
            }
        }
    }

    let name = name.ok_or_else(|| SpecError {
        line: 1,
        message: "missing `topology <name>` header".into(),
    })?;
    let mut b = TopologyBuilder::new(name);
    if let Some(w) = workers {
        b.set_num_workers(w);
    }
    if let Some(p) = max_pending {
        b.set_max_spout_pending(p);
    }
    for c in &components {
        if c.is_spout {
            b.set_spout(c.name.as_str(), c.parallelism)
                .set_cpu_load(c.cpu)
                .set_memory_load(c.mem)
                .set_bandwidth_load(c.bandwidth)
                .set_profile(c.profile);
        } else {
            let mut bolt = b.set_bolt(c.name.as_str(), c.parallelism);
            for (from, grouping) in &c.subscriptions {
                bolt.grouping(from.as_str(), grouping.clone());
            }
            bolt.set_cpu_load(c.cpu)
                .set_memory_load(c.mem)
                .set_bandwidth_load(c.bandwidth)
                .set_profile(c.profile);
        }
    }
    b.build().map_err(|e| SpecError {
        line: components.last().map_or(1, |c| c.line),
        message: e.to_string(),
    })
}

/// Serializes a topology back to spec text. `parse_topology` of the
/// output reproduces the topology exactly.
pub fn topology_to_spec(topology: &Topology) -> String {
    let mut out = String::new();
    out.push_str(&format!("topology {}\n", topology.id()));
    if let Some(w) = topology.num_workers() {
        out.push_str(&format!("workers {w}\n"));
    }
    if let Some(p) = topology.max_spout_pending() {
        out.push_str(&format!("max-spout-pending {p}\n"));
    }
    for c in topology.components() {
        let kind = if c.is_spout() { "spout" } else { "bolt" };
        let r = c.resources();
        let p = c.profile();
        out.push_str(&format!(
            "{kind} {} parallelism={} cpu={:?} mem={:?} bandwidth={:?} \
             work-ms={:?} emit={:?} bytes={}",
            c.id(),
            c.parallelism(),
            r.cpu_points,
            r.memory_mb,
            r.bandwidth,
            p.work_ms_per_tuple,
            p.emit_factor,
            p.tuple_bytes,
        ));
        if let Some(rate) = p.max_rate_tuples_per_sec {
            out.push_str(&format!(" rate={rate:?}"));
        }
        out.push('\n');
        for input in c.inputs() {
            let grouping = match &input.grouping {
                StreamGrouping::Shuffle => "shuffle".to_owned(),
                StreamGrouping::All => "all".to_owned(),
                StreamGrouping::Global => "global".to_owned(),
                StreamGrouping::LocalOrShuffle => "local-or-shuffle".to_owned(),
                StreamGrouping::Fields(f) => format!("fields {}", f.join(",")),
            };
            out.push_str(&format!("  subscribe {} {grouping}\n", input.from));
        }
    }
    out
}

fn parse_u32(value: Option<&&str>, what: &str, line: usize) -> Result<u32, SpecError> {
    value
        .ok_or_else(|| SpecError {
            line,
            message: format!("`{what}` needs a value"),
        })?
        .parse()
        .map_err(|_| SpecError {
            line,
            message: format!("invalid number for `{what}`"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORD_COUNT: &str = "\
# the word-count starter topology
topology word-count
workers 12
max-spout-pending 4

spout sentences parallelism=4 cpu=50 mem=512 work-ms=0.05 bytes=200 rate=7000
bolt split parallelism=6 cpu=30 mem=256 work-ms=0.04
  subscribe sentences shuffle
bolt count parallelism=6 cpu=30 mem=256 work-ms=0.03 emit=0
  subscribe split fields word
";

    #[test]
    fn parses_the_doc_example() {
        let t = parse_topology(WORD_COUNT).unwrap();
        assert_eq!(t.id().as_str(), "word-count");
        assert_eq!(t.num_workers(), Some(12));
        assert_eq!(t.max_spout_pending(), Some(4));
        assert_eq!(t.total_tasks(), 16);
        let s = t.component("sentences").unwrap();
        assert!(s.is_spout());
        assert_eq!(s.resources().cpu_points, 50.0);
        assert_eq!(s.profile().max_rate_tuples_per_sec, Some(7000.0));
        let count = t.component("count").unwrap();
        assert_eq!(count.inputs()[0].grouping, StreamGrouping::fields(["word"]));
        assert!(count.profile().is_sink());
    }

    #[test]
    fn roundtrips() {
        let t = parse_topology(WORD_COUNT).unwrap();
        let spec = topology_to_spec(&t);
        let t2 = parse_topology(&spec).unwrap();
        assert_eq!(topology_to_spec(&t2), spec);
        assert_eq!(t2.total_tasks(), t.total_tasks());
        assert_eq!(t2.num_workers(), t.num_workers());
    }

    #[test]
    fn defaults_are_storm_like() {
        let t = parse_topology("topology t\nspout s\nbolt b\n  subscribe s\n").unwrap();
        let s = t.component("s").unwrap();
        assert_eq!(s.parallelism(), 1);
        assert_eq!(s.resources().cpu_points, 10.0);
        assert_eq!(s.resources().memory_mb, 128.0);
        assert_eq!(
            t.component("b").unwrap().inputs()[0].grouping,
            StreamGrouping::Shuffle
        );
    }

    #[test]
    fn errors_carry_lines_and_reasons() {
        let cases = [
            ("spout s\n", "missing `topology"),
            (
                "topology t\nspout s\nbolt b\n  subscribe ghost\n",
                "undeclared component",
            ),
            (
                "topology t\nspout s\n  subscribe s\n",
                "spouts cannot subscribe",
            ),
            ("topology t\nspout s cpu=fast\n", "invalid number"),
            ("topology t\nspout s foo=1\n", "unknown attribute"),
            ("topology t\nnonsense\n", "unknown directive"),
            (
                "topology t\nsubscribe x\n",
                "subscribe before any component",
            ),
            (
                "topology t\nspout s\nbolt b\n  subscribe s martian\n",
                "unknown grouping",
            ),
            ("topology t\nspout s parallelism=0\n", "at least 1"),
            ("topology\n", "needs a name"),
        ];
        for (text, expected) in cases {
            let err = parse_topology(text).unwrap_err();
            assert!(
                err.message.contains(expected),
                "{text:?}: got {:?}",
                err.message
            );
        }
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let t = parse_topology(
            "# header\ntopology t # trailing\n\nspout s # spout\nbolt b\n  subscribe s\n",
        )
        .unwrap();
        assert_eq!(t.components().len(), 2);
    }
}
