//! # rstorm-spec
//!
//! A plain-text specification format for topologies and clusters, so that
//! schedules can be computed and simulated from files (see the `rstorm`
//! CLI) instead of Rust code.
//!
//! ## Topology spec
//!
//! ```text
//! # the word-count starter topology
//! topology word-count
//! workers 12
//! max-spout-pending 4
//!
//! spout sentences parallelism=4 cpu=50 mem=512 work-ms=0.05 bytes=200 rate=7000
//! bolt split parallelism=6 cpu=30 mem=256 work-ms=0.04
//!   subscribe sentences shuffle
//! bolt count parallelism=6 cpu=30 mem=256 work-ms=0.03 emit=0
//!   subscribe split fields word
//! ```
//!
//! One `topology` header; `workers` / `max-spout-pending` optional; then
//! `spout`/`bolt` declarations with `key=value` attributes, each bolt
//! followed by indented `subscribe <from> <grouping>` lines. Groupings:
//! `shuffle`, `all`, `global`, `local-or-shuffle`, `fields f1,f2,...`.
//! Attributes (all optional except `parallelism` defaulting to 1):
//! `cpu` (points), `mem` (MB), `bandwidth`, `work-ms` (per tuple),
//! `emit` (output tuples per input tuple), `bytes` (tuple size) and
//! `rate` (tuples/s per task; spouts only — omit for flat-out sources).
//!
//! ## Cluster spec
//!
//! ```text
//! cluster
//! rack rack-0
//!   node node-0 cpu=100 mem=2048 slots=4
//!   node node-1 cpu=100 mem=2048 slots=4
//! rack rack-1
//!   node node-2 cpu=100 mem=2048 slots=4
//! ```
//!
//! Both formats serialize back via [`topology_to_spec`] /
//! [`cluster_to_spec`] and round-trip exactly (property-tested).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cluster_spec;
mod error;
mod topology_spec;

pub use cluster_spec::{cluster_to_spec, parse_cluster};
pub use error::SpecError;
pub use topology_spec::{parse_topology, topology_to_spec};

pub(crate) fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

pub(crate) fn parse_attrs(
    parts: &[&str],
    line: usize,
) -> Result<std::collections::BTreeMap<String, String>, SpecError> {
    let mut attrs = std::collections::BTreeMap::new();
    for part in parts {
        let (k, v) = part.split_once('=').ok_or_else(|| SpecError {
            line,
            message: format!("expected key=value, got `{part}`"),
        })?;
        attrs.insert(k.to_owned(), v.to_owned());
    }
    Ok(attrs)
}

pub(crate) fn attr_f64(
    attrs: &std::collections::BTreeMap<String, String>,
    key: &str,
    default: f64,
    line: usize,
) -> Result<f64, SpecError> {
    match attrs.get(key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| SpecError {
            line,
            message: format!("invalid number for `{key}`: `{raw}`"),
        }),
    }
}
