//! Every bundled benchmark workload must survive a spec round-trip
//! exactly — the CLI must be able to express everything the library can.

use rstorm_spec::{cluster_to_spec, parse_cluster, parse_topology, topology_to_spec};
use rstorm_workloads::{clusters, micro, yahoo};

#[test]
fn all_bundled_topologies_roundtrip() {
    for topology in [
        micro::linear_network_bound(),
        micro::diamond_network_bound(),
        micro::star_network_bound(),
        micro::linear_cpu_bound(),
        micro::diamond_cpu_bound(),
        micro::star_cpu_bound(),
        yahoo::page_load(),
        yahoo::processing(),
    ] {
        let spec = topology_to_spec(&topology);
        let reparsed =
            parse_topology(&spec).unwrap_or_else(|e| panic!("{}: {e}\n---\n{spec}", topology.id()));
        assert_eq!(
            topology_to_spec(&reparsed),
            spec,
            "{} spec must be a fixed point",
            topology.id()
        );
        assert_eq!(reparsed.total_tasks(), topology.total_tasks());
        assert_eq!(reparsed.num_workers(), topology.num_workers());
        assert_eq!(reparsed.max_spout_pending(), topology.max_spout_pending());
        assert_eq!(reparsed.components().len(), topology.components().len());
        for c in topology.components() {
            let r = reparsed.component(c.id().as_str()).unwrap();
            assert_eq!(r.resources(), c.resources(), "{}/{}", topology.id(), c.id());
            assert_eq!(r.profile(), c.profile(), "{}/{}", topology.id(), c.id());
            assert_eq!(r.inputs(), c.inputs(), "{}/{}", topology.id(), c.id());
        }
    }
}

#[test]
fn emulab_presets_roundtrip() {
    for cluster in [clusters::emulab_micro(), clusters::emulab_multi()] {
        let spec = cluster_to_spec(&cluster);
        let reparsed = parse_cluster(&spec).unwrap();
        assert_eq!(cluster_to_spec(&reparsed), spec);
        assert_eq!(reparsed.nodes().len(), cluster.nodes().len());
        assert_eq!(reparsed.racks(), cluster.racks());
    }
}
