//! # rstorm
//!
//! A from-scratch Rust reproduction of **R-Storm** (Peng, Hosseini, Hong,
//! Farivar, Campbell — *R-Storm: Resource-Aware Scheduling in Storm*,
//! ACM Middleware 2015): the resource-aware scheduler that became Apache
//! Storm's Resource Aware Scheduler, together with every substrate needed
//! to evaluate it — a Storm-style topology and cluster model, the default
//! round-robin baseline, a deterministic discrete-event cluster simulator
//! and the paper's benchmark workloads.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`topology`] | `rstorm-topology` | topologies, components, groupings, tasks |
//! | [`cluster`] | `rstorm-cluster` | racks, nodes, worker slots, network costs |
//! | [`scheduler`] | `rstorm-core` | R-Storm + baseline schedulers, GlobalState |
//! | [`sim`] | `rstorm-sim` | the discrete-event cluster simulator |
//! | [`metrics`] | `rstorm-metrics` | throughput windows, CPU utilization |
//! | [`workloads`] | `rstorm-workloads` | the paper's benchmark topologies |
//! | [`spec`] | `rstorm-spec` | plain-text topology/cluster spec files |
//!
//! ## Quickstart
//!
//! ```
//! use rstorm::prelude::*;
//!
//! // 1. Describe a topology, with resource hints per §5.2 of the paper.
//! let mut builder = TopologyBuilder::new("word-count");
//! builder
//!     .set_spout("sentences", 4)
//!     .set_cpu_load(50.0)
//!     .set_memory_load(512.0);
//! builder
//!     .set_bolt("split", 4)
//!     .shuffle_grouping("sentences")
//!     .set_cpu_load(25.0)
//!     .set_memory_load(256.0);
//! builder
//!     .set_bolt("count", 4)
//!     .fields_grouping("split", ["word"])
//!     .set_cpu_load(25.0)
//!     .set_memory_load(256.0);
//! let topology = builder.build()?;
//!
//! // 2. Describe the cluster (two racks of six Emulab-style workers).
//! let cluster = ClusterBuilder::new()
//!     .homogeneous_racks(2, 6, ResourceCapacity::emulab_node(), 4)
//!     .build()?;
//!
//! // 3. Schedule with R-Storm.
//! let mut state = GlobalState::new(&cluster);
//! let assignment = RStormScheduler::new().schedule(&topology, &cluster, &mut state)?;
//! assert_eq!(assignment.len(), 12);
//!
//! // 4. Simulate the schedule and read the throughput.
//! let mut sim = Simulation::new(cluster, SimConfig::quick());
//! sim.add_topology(&topology, &assignment);
//! let report = sim.run();
//! assert!(report.steady_throughput("word-count", 1) > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every reproduced figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Topology model: components, streams, groupings, tasks, executors.
pub mod topology {
    pub use rstorm_topology::*;
}

/// Cluster model: racks, nodes, worker slots, network costs, `storm.yaml`.
pub mod cluster {
    pub use rstorm_cluster::*;
}

/// Schedulers: R-Storm, the default even scheduler, comparators, and the
/// shared scheduling state.
pub mod scheduler {
    pub use rstorm_core::*;
}

/// The discrete-event cluster simulator.
pub mod sim {
    pub use rstorm_sim::*;
}

/// Metrics: windowed throughput, CPU utilization, summaries.
pub mod metrics {
    pub use rstorm_metrics::*;
}

/// The paper's benchmark workloads and cluster presets.
pub mod workloads {
    pub use rstorm_workloads::*;
}

/// Plain-text topology/cluster specification format (used by the
/// `rstorm` CLI).
pub mod spec {
    pub use rstorm_spec::*;
}

/// The most common imports, for `use rstorm::prelude::*`.
pub mod prelude {
    pub use rstorm_cluster::{Cluster, ClusterBuilder, NetworkCosts, ResourceCapacity, WorkerSlot};
    pub use rstorm_core::schedulers::{
        EvenScheduler, OfflineLinearizationScheduler, RandomScheduler,
    };
    pub use rstorm_core::{
        schedule_all, verify_plan, Assignment, DeltaScheduler, DriftConfig, DriftDetector,
        DriftReport, GlobalState, MigrationMove, MigrationPlan, ProfileRefiner, RStormConfig,
        RStormScheduler, RecoveryConfig, RecoveryEvent, RecoveryManager, ReferenceRStormScheduler,
        ScheduleError, Scheduler, SchedulingPlan, SoftConstraintWeights,
    };
    pub use rstorm_metrics::{StatisticServer, Summary, ThroughputReport};
    pub use rstorm_sim::{
        run_adaptive_rebalance, run_crash_recover, AdaptiveConfig, AdaptiveOutcome, ChaosConfig,
        ChaosOutcome, FaultEvent, FaultPlan, NetworkModel, RecoveryObservations,
        ReferenceSimulation, SimConfig, SimDebugStats, SimReport, SimTotals, Simulation,
    };
    pub use rstorm_topology::{
        ExecutionProfile, StreamGrouping, Topology, TopologyBuilder, TraversalOrder,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_a_working_pipeline() {
        let mut b = TopologyBuilder::new("t");
        b.set_spout("s", 2);
        b.set_bolt("k", 2).shuffle_grouping("s");
        let topology = b.build().unwrap();
        let cluster = ClusterBuilder::new()
            .homogeneous_racks(1, 2, ResourceCapacity::emulab_node(), 4)
            .build()
            .unwrap();
        let plan = schedule_all(&RStormScheduler::new(), &[&topology], &cluster).unwrap();
        assert!(verify_plan(&plan, &[&topology], &cluster).is_empty());
    }
}
